"""The controller: initialization, event dispatch, termination.

The controller is the paper's §III-A1 component: it builds every other
module from the configuration, owns the event queue and simulation clock,
dispatches message and time events to the consensus and attacker modules,
and produces the final :class:`~repro.core.results.SimulationResult` from
the metrics collector.

It also implements the :class:`~repro.core.node.NodeEnvironment` facade —
the only surface protocol code can touch.
"""

from __future__ import annotations

import math
import random
import time as _time
from collections import Counter
from typing import TYPE_CHECKING, Any

from ..attacks.base import Attacker, AttackerContext
from ..attacks.registry import make_attacker
from ..faults.engine import FaultInjector
from ..network.module import NetworkModule
from ..observability.logging import SimLogger, get_logger
from ..observability.signals import LiveSignals
from ..protocols.registry import get_protocol
from .clock import SimulationClock
from .config import SimulationConfig
from .errors import ConfigurationError, LivenessTimeoutError
from .events import (
    ATTACKER_OWNER,
    CONTROLLER_OWNER,
    EventQueue,
    MessageEvent,
    TimeEvent,
)
from .message import Message
from .metrics import MetricsCollector
from .node import Node, TimerHandle
from .results import SimulationResult, StallReport
from .rng import RandomSource
from .tracing import Trace, TraceSink

if TYPE_CHECKING:  # pragma: no cover
    from ..observability.health import HealthMonitor
    from ..observability.metrics import MetricsRegistry
    from ..observability.profiler import Profiler
    from ..workload.manager import WorkloadManager


class Controller:
    """Builds and runs one simulation.

    Typical use goes through :func:`repro.core.runner.run_simulation`; the
    controller is public for tests and for embedding the simulator in other
    harnesses (the validator module drives it directly).

    Args:
        config: the run's complete configuration.
        sink: optional :class:`~repro.core.tracing.TraceSink` receiving the
            run's trace events; passing one enables tracing regardless of
            ``config.record_trace`` (telemetry routing is a caller concern,
            not part of the experiment's identity — the configuration, and
            therefore the determinism fingerprint, is untouched).
        profiler: optional hot-path
            :class:`~repro.observability.profiler.Profiler`; when set, the
            dispatch loop times its sections and the result carries a
            :class:`~repro.observability.profiler.RunProfile` (outside the
            fingerprint).  ``None`` (default) costs one branch per section.
        metrics: optional :class:`~repro.observability.metrics.MetricsRegistry`;
            when set, the engine binds its standard instruments (queue depth,
            in-flight messages, per-node wire bytes, delivery latency...) and
            samples them on the simulated clock.  The result then carries a
            :class:`~repro.observability.metrics.RunMetrics` (outside the
            fingerprint).  Like the other telemetry arguments, this is a run
            argument, never part of the experiment's identity.
        lineage: when True (default), the controller tracks the causal id of
            the event currently being dispatched so the network and trace
            layers can stamp every message, timer, and decision with its
            ``cause``.  Pure bookkeeping outside the RNG path — digests are
            byte-identical either way; disable to shave the last f-string
            per event off untraced hot loops.
        health: optional :class:`~repro.observability.health.HealthMonitor`;
            when set, the dispatch loop feeds its O(1) anomaly detectors
            and the result carries a
            :class:`~repro.observability.health.HealthReport` (outside the
            fingerprint).  OBSERVE-only and RNG-free, like the other
            telemetry arguments.
    """

    def __init__(
        self,
        config: SimulationConfig,
        *,
        sink: TraceSink | None = None,
        profiler: "Profiler | None" = None,
        metrics: "MetricsRegistry | None" = None,
        lineage: bool = True,
        health: "HealthMonitor | None" = None,
    ) -> None:
        config.validate()
        self.config = config
        protocol_cls = get_protocol(config.protocol)
        self.n = config.n
        self.f = config.f if config.f is not None else protocol_cls.max_resilience(config.n)
        if self.f >= config.n:
            raise ConfigurationError(f"f={self.f} must be < n={config.n}")
        protocol_cls.check_resilience(self.n, self.f)
        if config.faults.requires_recovery() and not protocol_cls.supports_recovery:
            raise ConfigurationError(
                f"protocol {config.protocol!r} does not support crash recovery; "
                "schedule a permanent crash (omit the recovery time) or pick a "
                "protocol whose class sets supports_recovery = True"
            )

        self.clock = SimulationClock()
        self.queue = EventQueue()
        self.random_source = RandomSource(config.seed)
        self._shared_rngs: dict[str, random.Random] = {}
        self.metrics = MetricsCollector(self.n, config.num_decisions)
        if sink is not None:
            self.trace = Trace(enabled=True, sink=sink)
        else:
            self.trace = Trace(enabled=config.record_trace)
        self.profiler = profiler
        #: Simulated-time metrics registry (or None).  Must be set before
        #: the NetworkModule below is built: the network binds it once at
        #: construction for its send hook.
        self.obs_metrics = metrics
        #: Streaming run-health monitor (or None); bound at the end of
        #: construction, once the workload ledger it samples exists.
        self.health = health
        self._lineage = lineage
        #: Causal id of the event currently being dispatched ("m<msg_id>",
        #: "t<timer_id>", "s<node>" during on_start, "a" during attacker
        #: setup).  None before the run starts or when lineage is disabled.
        self._current_cause: str | None = None
        self.log = SimLogger(get_logger("controller"), clock=self.clock)

        self.attacker: Attacker = make_attacker(config.attack)
        #: Live run signals for signal-driven adversaries; allocated only
        #: when the attacker asks for them (``wants_signals``), so benign
        #: runs carry no extra per-event state and no RNG perturbation.
        self.signals: "LiveSignals | None" = (
            LiveSignals(self.n) if self.attacker.wants_signals else None
        )
        self.attacker_ctx = AttackerContext(self, self.attacker.capabilities)
        self.attacker.bind(self.attacker_ctx)

        self._timer_ids = iter(range(1, 1 << 62))
        self._message_ids = iter(range(1, 1 << 62))

        self.fault_injector: FaultInjector | None = None
        if config.faults.link_specs():
            self.fault_injector = FaultInjector(
                config.faults,
                self.random_source,
                config.network,
                self.metrics,
                self.trace,
                self.next_message_id,
            )

        self.network = NetworkModule(
            self,
            config.network,
            self.random_source.numpy("network.delay"),
            self.attacker,
            self.attacker_ctx,
            faults=self.fault_injector,
        )

        if metrics is not None:
            metrics.bind_engine(self)

        self.nodes: list[Node] = [protocol_cls(i, self) for i in range(self.n)]
        self._halted: set[int] = set()
        self._down: set[int] = set()
        self._permanent_crashes: set[int] = set()
        self._events_processed = 0
        self._max_view = 0
        self._stop_reason: str | None = None
        self._stall: StallReport | None = None
        self._last_progress = 0.0
        self._node_activity: dict[int, float] = {i: 0.0 for i in range(self.n)}
        #: Per-node activity tracking feeds only the stall report, which is
        #: built only when the liveness watchdog is armed — gate the
        #: per-event dict write (two of them per delivered event at n=1000)
        #: behind that.
        self._watchdog = config.stall_timeout is not None
        #: Termination-check gate: ``metrics.terminated()`` can only change
        #: after a decision or a change to the honest set, so the run loop
        #: re-evaluates it only when this flag is raised (one attribute load
        #: per event instead of a full predicate call).
        self._termination_dirty = True
        #: Open-loop client workload (or None).  Built from its own
        #: ``workload.{client}`` substreams, so benign runs draw nothing
        #: extra and their fingerprints are untouched.
        self._workload: "WorkloadManager | None" = None
        if config.workload is not None:
            from ..workload.manager import WorkloadManager

            self._workload = WorkloadManager(config.workload, self.random_source)
        self._schedule_crash_events()
        if self._workload is not None:
            self._schedule_workload_events()
        if health is not None:
            health.bind_engine(self)
        #: Fast-path binding (same idiom as MetricsRegistry's bound
        #: instruments): deliveries bump the monitor's per-kind counter
        #: dict directly instead of paying a method call per message.
        #: ``close_window`` resets it with ``clear()``, so the shared
        #: reference stays live across windows.
        self._health_kinds = None if health is None else health._kind_in_window

    # ------------------------------------------------------------------
    # NodeEnvironment facade
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def lam(self) -> float:
        return self.config.lam

    @property
    def seed(self) -> int:
        return self.config.seed

    def protocol_param(self, name: str, default: Any = None) -> Any:
        return self.config.protocol_params.get(name, default)

    def send_message(self, message: Message) -> None:
        if message.source in self._halted and not message.forged:
            return  # a halted replica's late sends vanish silently
        if message.source in self._down and not message.forged:
            return  # a crashed node cannot transmit while down
        self.network.submit(message)

    def register_timer(self, owner: int, delay: float, name: str, data: Any) -> TimerHandle:
        if delay < 0:
            raise ConfigurationError(f"timer delay must be >= 0, got {delay}")
        timer_id = next(self._timer_ids)
        event = TimeEvent(
            time=self.clock.now + delay,
            owner=owner,
            name=name,
            data=data,
            timer_id=timer_id,
            cause=self._current_cause,
        )
        handle = self.queue.push(event)
        return TimerHandle(timer_id=timer_id, queue_handle=handle)

    def cancel_timer(self, handle: TimerHandle) -> None:
        self.queue.cancel(handle.queue_handle)

    def cut_batch(self, proposer: int, slot: int, view: int | None = None) -> str | None:
        """Cut a mempool batch for ``slot``, or ``None`` for synthetic.

        The propose-from-mempool hook behind
        :meth:`~repro.protocols.base.ProtocolNode.proposal_value`: returns a
        batch tag string when a workload is configured and a cut trigger is
        ready, else ``None`` so the synthetic-payload path stays the
        default.
        """
        if self._workload is None:
            return None
        return self._workload.cut_batch(proposer, slot, view, self.clock.now)

    def report_decision(self, node_id: int, slot: int, value: Any) -> None:
        now = self.clock.now
        self.metrics.on_decision(node_id, slot, value, now)
        if self._workload is not None and node_id not in self.metrics.faulty:
            # First honest decision of a slot stamps decided-at on the
            # winning batch's requests and requeues the losers (idempotent
            # per slot inside the manager).
            self._workload.on_decided(slot, value, now)
        self._termination_dirty = True
        self._last_progress = now
        self._node_activity[node_id] = now
        if self.signals is not None:
            self.signals.on_decide(node_id, now)
        if self.obs_metrics is not None:
            self.obs_metrics.on_decide()
        if self.health is not None:
            self.health.on_decide(node_id, now)
        if self.trace.enabled:
            self.trace.record(
                now, "decide", node_id,
                slot=slot, value=value, cause=self._current_cause,
            )

    def report_phase(self, node_id: int, phase: str, **fields: Any) -> None:
        """Record a protocol phase transition (no-op unless tracing).

        Deliberately side-effect free with respect to the engine: unlike
        :meth:`report_to_system` it touches neither the liveness watchdog
        nor node-activity bookkeeping, so instrumented and uninstrumented
        protocols terminate identically.  Live signals (attacker-requested
        only) accumulate per-view phase timings from the same annotations.
        """
        if self.signals is not None:
            self.signals.on_phase(
                node_id, phase, fields.get("view"), fields.get("height"),
                self.clock.now,
            )
        if self.trace.enabled:
            self.trace.record(self.clock.now, "phase", node_id, phase=phase, **fields)

    def report_to_system(self, node_id: int, kind: str, **fields: Any) -> None:
        if kind == "view" and "view" in fields:
            # Round-complexity accounting (§II-C): the highest view/round/
            # iteration any honest node entered, tracked even when full
            # tracing is disabled.
            view = int(fields["view"])
            if view > self._max_view:
                self._max_view = view
            # A view advance counts as liveness progress for the watchdog.
            self._last_progress = self.clock.now
            if self.health is not None:
                self.health.on_view(node_id, view, self.clock.now)
        self._node_activity[node_id] = self.clock.now
        if self.trace.enabled:
            self.trace.record(self.clock.now, kind, node_id, **fields)

    def rng(self, name: str) -> random.Random:
        return self.shared_rng(name)

    def shared_rng(self, name: str) -> random.Random:
        """Cached named random stream (stable across calls)."""
        if name not in self._shared_rngs:
            self._shared_rngs[name] = self.random_source.python(name)
        return self._shared_rngs[name]

    # ------------------------------------------------------------------
    # Scheduling / attacker callbacks
    # ------------------------------------------------------------------

    def next_message_id(self) -> int:
        """Per-run message id (deterministic across identical runs)."""
        return next(self._message_ids)

    def schedule_delivery(self, message: Message) -> None:
        """Register a message event at the message's delivery time."""
        self.queue.push(MessageEvent(time=message.deliver_at, message=message))

    def on_node_corrupted(self, node: int) -> None:
        """Attacker corrupted ``node``: halt its replica from now on."""
        self._halted.add(node)
        self.metrics.mark_faulty(node)
        # Shrinking the honest set can flip the termination predicate.
        self._termination_dirty = True
        self.trace.record(self.clock.now, "corrupt", node)

    # ------------------------------------------------------------------
    # Environmental faults (crash/recovery lifecycle)
    # ------------------------------------------------------------------

    @property
    def down_nodes(self) -> frozenset[int]:
        """Nodes currently crashed by the environment (not the attacker)."""
        return frozenset(self._down)

    def _schedule_crash_events(self) -> None:
        """Register controller-owned timers for every crash/recovery spec."""
        for spec in self.config.faults.crash_specs():
            assert spec.node is not None  # guaranteed by FaultSpec.validate
            if spec.end is None:
                self._permanent_crashes.add(spec.node)
            self.queue.push(TimeEvent(
                time=spec.start, owner=CONTROLLER_OWNER,
                name="env-crash", data=spec.node, timer_id=next(self._timer_ids),
            ))
            if spec.end is not None:
                self.queue.push(TimeEvent(
                    time=spec.end, owner=CONTROLLER_OWNER,
                    name="env-recover", data=spec.node, timer_id=next(self._timer_ids),
                ))

    def _schedule_workload_events(self) -> None:
        """Register one controller-owned submit event per client request."""
        assert self._workload is not None
        for request in self._workload.requests:
            self.queue.push(TimeEvent(
                time=request.submit_time, owner=CONTROLLER_OWNER,
                name="workload-submit", data=request.index,
                timer_id=next(self._timer_ids),
            ))

    def _on_env_event(self, event: TimeEvent) -> None:
        """Handle a controller-owned environment lifecycle event."""
        # Crash/recovery may change the honest set (permanent crashes are
        # marked faulty), which can flip the termination predicate; the
        # last workload submission arms the mempool's drain trigger.
        self._termination_dirty = True
        if event.name == "workload-submit":
            assert self._workload is not None
            self._workload.submit(int(event.data))
            if self.trace.enabled:
                request = self._workload.requests[int(event.data)]
                self.trace.record(
                    event.time, "workload-submit", CONTROLLER_OWNER,
                    request=request.id, client=request.client,
                )
            return
        node = int(event.data)
        if event.name == "env-crash":
            if node in self._down:
                return  # overlapping crash windows: already down
            self._down.add(node)
            # In-memory timers do not survive a crash; pending deliveries
            # are dropped at delivery time (see _dispatch).
            cancelled = self.queue.cancel_if(
                lambda e: isinstance(e, TimeEvent) and e.owner == node
            )
            self.metrics.faults.crashes += 1
            self.trace.record(event.time, "env-crash", node, timers_cancelled=cancelled)
            self.log.info(
                "environment crashed node", node=node, timers_cancelled=cancelled,
                permanent=node in self._permanent_crashes,
            )
            if node in self._permanent_crashes:
                # A permanent fail-stop leaves the honest set for good;
                # a temporary crash stays in honest accounting (it must
                # still decide every slot after recovering).
                self.metrics.mark_faulty(node)
        elif event.name == "env-recover":
            if node not in self._down:
                return
            self._down.discard(node)
            self.metrics.faults.recoveries += 1
            self.trace.record(event.time, "env-recover", node)
            self.log.info("environment recovered node", node=node)
            self.nodes[node].on_recover()
        else:  # pragma: no cover - only the two lifecycle events exist
            raise ConfigurationError(f"unknown controller event {event.name!r}")

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation to termination (or horizon).

        Returns:
            The complete :class:`SimulationResult`.  When the liveness
            watchdog (``config.stall_timeout``) detects a stall, the result
            carries a :class:`StallReport` instead of the run raising — a
            diagnosed stall is a *finding*, not an error.

        Raises:
            LivenessTimeoutError: the run hit ``max_time``/``max_events`` or
                ran out of events before termination, the watchdog is
                disabled, and ``allow_horizon`` is False.
            SafetyViolationError: two honest nodes disagreed.
        """
        started = _time.perf_counter()
        config = self.config
        stall_timeout = config.stall_timeout
        prof = self.profiler
        obs = self.obs_metrics
        health = self.health
        lineage = self._lineage

        self.log.debug(
            "run starting",
            protocol=config.protocol, n=self.n, f=self.f, seed=config.seed,
        )
        try:
            return self._run_to_completion(
                started, config, stall_timeout, prof, obs, health, lineage
            )
        finally:
            # Closed on *every* exit path (safety violations, liveness
            # errors, protocol bugs) so a crashed run still leaves a
            # flushed, readable — truncated but valid — trace behind.
            self.trace.close()

    def _run_to_completion(
        self,
        started: float,
        config: SimulationConfig,
        stall_timeout: float | None,
        prof: "Profiler | None",
        obs: "MetricsRegistry | None",
        health: "HealthMonitor | None",
        lineage: bool,
    ) -> SimulationResult:
        if lineage:
            self._current_cause = "a"
        self.attacker.setup()
        for node in self.nodes:
            if node.id not in self._halted:
                if lineage:
                    self._current_cause = f"s{node.id}"
                node.on_start()

        # Hot loop: every name used per iteration is a local (the loop runs
        # once per event — ~100k times for the paper's large configs), and
        # the event counter is flushed back to the instance attribute on
        # every exit path so exceptions (safety violations) still leave an
        # accurate count behind.
        queue = self.queue
        clock = self.clock
        terminated_check = (
            self.metrics.terminated
            if self._workload is None
            else self._workload_terminated
        )
        peek_time = queue.peek_time
        pop_entry = queue.pop_entry
        advance_to = clock.advance_to
        dispatch = self._dispatch
        max_time = config.max_time
        max_events = config.max_events
        events_processed = self._events_processed
        # The monitor's next window boundary, hoisted to a local float: the
        # common iteration pays one compare instead of a method call into
        # the monitor (its ``advance`` would just fail the same check).
        health_boundary = math.inf if health is None else health._next_boundary
        try:
            while True:
                # The termination predicate can only change when a decision
                # lands or the honest set shrinks; those paths raise the
                # dirty flag, so the common iteration pays one attribute
                # load instead of the full predicate.
                if self._termination_dirty:
                    self._termination_dirty = False
                    if terminated_check():
                        break
                next_time = peek_time()
                if next_time is None:
                    if stall_timeout is not None:
                        self._stall = self._build_stall(
                            "event queue drained before termination", clock.now
                        )
                        self._stop_reason = "stalled: event queue drained"
                    else:
                        self._stop_reason = "event queue empty before termination"
                    break
                if stall_timeout is not None:
                    deadline = self._last_progress + stall_timeout
                    if next_time > deadline and deadline <= max_time:
                        # No decision, view advance, or honest delivery for a
                        # full watchdog window of simulated time — and nothing
                        # scheduled that could change that before the deadline.
                        advance_to(deadline)
                        self._stall = self._build_stall(
                            f"no honest progress for {stall_timeout:g} ms", deadline
                        )
                        self._stop_reason = "stalled: liveness watchdog"
                        break
                if next_time > max_time:
                    self._stop_reason = f"horizon max_time={max_time} reached"
                    advance_to(max_time)
                    break
                if events_processed >= max_events:
                    self._stop_reason = f"max_events={max_events} reached"
                    break
                if prof is None:
                    entry = pop_entry()
                else:
                    t0 = _time.perf_counter()
                    entry = pop_entry()
                    prof.add("queue.pop", t0)
                event_time = entry[0]
                advance_to(event_time)
                events_processed += 1
                # Window closes happen *before* the boundary-crossing
                # event's own trace lines — the ordering contract behind
                # online == offline health replay.
                if event_time >= health_boundary:
                    health.advance(event_time)
                    health_boundary = health._next_boundary
                if obs is not None:
                    obs.advance(event_time)
                dispatch(entry[2], event_time, entry[3])
        finally:
            self._events_processed = events_processed

        terminated = terminated_check()
        if self._stall is not None:
            self.log.warning(
                "liveness watchdog stopped the run",
                reason=self._stall.reason,
                last_progress_ms=self._stall.last_progress,
            )
        elif self._stop_reason is not None:
            self.log.info("run stopped before termination", reason=self._stop_reason)
        if not terminated and self._stall is None and not config.allow_horizon:
            raise LivenessTimeoutError(
                f"{config.protocol} did not terminate: {self._stop_reason} "
                f"(decisions: { {i: self.metrics.decisions_of(i) for i in range(self.n)} })"
            )
        self.metrics.finish(self.clock.now)
        if health is not None:
            health.finish(self.clock.now)
        if obs is not None:
            obs.finish(self.clock.now)
        wall = _time.perf_counter() - started
        self.log.debug(
            "run finished",
            terminated=terminated,
            events=self._events_processed,
            wall_seconds=round(wall, 4),
        )
        return self._build_result(terminated, wall)

    def _dispatch(self, event: Any, event_time: float | None = None, dest: int | None = None) -> None:
        # ``type() is`` instead of ``isinstance``: MessageEvent/TimeEvent are
        # the only event kinds the engine schedules, and the exact-type check
        # skips the subclass machinery on the hottest branch in the run loop.
        #
        # ``event_time``/``dest`` come from the queue *entry*: the
        # dissemination fast path schedules one shared MessageEvent for a
        # whole broadcast, so the per-hop firing time and recipient are
        # entry data, not event fields.  For ordinary events they equal
        # ``event.time`` / ``message.dest`` (the defaults).
        if event_time is None:
            event_time = event.time
        if type(event) is MessageEvent:
            message = event.message
            if dest is None:
                dest = message.dest
            if self._lineage:
                # Everything sent or scheduled while this delivery is being
                # handled was caused by this message.
                self._current_cause = f"m{message.msg_id}"
            # Slow checks (crashed destination, corrupted replica, tampered
            # payload) only run when such state exists at all — benign runs
            # never enter this block.
            if self._down or self._halted or message.corrupted:
                if dest in self._down:
                    # The destination is crashed: the packet arrives at a dead
                    # host and is lost (recovery does not replay it).
                    self.metrics.faults.crash_dropped += 1
                    self.trace.record(
                        event_time, "env-crash-drop", dest,
                        source=message.source, msg_type=message.type,
                        msg_id=message.msg_id,
                    )
                    return
                if dest in self._halted:
                    self.trace.record(
                        event_time, "suppress", dest,
                        msg_type=message.type, msg_id=message.msg_id,
                    )
                    return
                if message.corrupted:
                    # Environmental corruption: signature/checksum
                    # verification fails at the receiver; protocol logic
                    # never sees it.
                    self.metrics.faults.rejected += 1
                    self.trace.record(
                        event_time, "env-reject", dest,
                        source=message.source, msg_type=message.type,
                        msg_id=message.msg_id,
                    )
                    return
            self.metrics.counts.delivered += 1
            self._last_progress = event_time
            if self._watchdog:
                self._node_activity[dest] = event_time
            if self.signals is not None:
                self.signals.on_deliver(
                    dest, message.source, event_time, message.type
                )
            if self.obs_metrics is not None:
                self.obs_metrics.on_deliver(event_time - message.sent_at)
            health_kinds = self._health_kinds
            if health_kinds is not None:
                health_kinds[message.type] += 1
            trace = self.trace
            if trace.enabled:
                # Deliveries carry the message's own cause plus its slot/view
                # coordinates (under the protocol's native key aliases):
                # loopback self-sends never produce a send record, so the
                # causality DAG must be walkable from deliveries alone.
                payload = message.payload
                trace.record(
                    event_time, "deliver", dest,
                    source=message.source, msg_type=message.type,
                    msg_id=message.msg_id, cause=message.cause,
                    slot=payload.get("slot", payload.get("height")),
                    view=payload.get("view", payload.get("round")),
                )
            prof = self.profiler
            if prof is None:
                self.nodes[dest].on_message(message)
            else:
                t0 = _time.perf_counter()
                self.nodes[dest].on_message(message)
                prof.add("protocol.on_message", t0)
        elif type(event) is TimeEvent:
            if self._lineage:
                self._current_cause = f"t{event.timer_id}"
            owner = event.owner
            if owner == ATTACKER_OWNER:
                prof = self.profiler
                if prof is None:
                    self.attacker.on_timer(event)
                else:
                    t0 = _time.perf_counter()
                    self.attacker.on_timer(event)
                    prof.add("attacker.timer", t0)
                return
            if owner == CONTROLLER_OWNER:
                self._on_env_event(event)
                return
            if owner in self._halted or owner in self._down:
                return
            if self._watchdog:
                self._node_activity[owner] = event_time
            trace = self.trace
            if trace.enabled:
                trace.record(
                    event_time, "timer", owner,
                    name=event.name, timer_id=event.timer_id, cause=event.cause,
                )
            prof = self.profiler
            if prof is None:
                self.nodes[owner].on_timer(event)
            else:
                t0 = _time.perf_counter()
                self.nodes[owner].on_timer(event)
                prof.add("protocol.on_timer", t0)
        else:  # pragma: no cover - no other event kinds exist
            raise ConfigurationError(f"unknown event type {type(event).__name__}")

    def _workload_terminated(self) -> bool:
        """Termination predicate for workload runs.

        Three conditions compose: the protocol floor
        (``metrics.terminated()`` — every honest node decided
        ``num_decisions`` slots, so an empty workload still runs the
        protocol), the ledger (every request submitted and decided), and
        full replication (every slot whose decided value carried requests
        has been decided by *every* honest node — clients are only
        answered once the fleet agrees, not just the first replica).
        """
        workload = self._workload
        assert workload is not None
        if not self.metrics.terminated():
            return False
        if not workload.complete():
            return False
        completed = self.metrics.slot_completion_times()
        return all(slot in completed for slot in workload.slots_with_requests())

    def _build_stall(self, reason: str, detected_at: float) -> StallReport:
        """Snapshot the run state into a structured stall diagnosis."""
        census: Counter[str] = Counter()
        for pending in self.queue.live_events():
            if isinstance(pending, MessageEvent):
                census[f"message:{pending.message.type}"] += 1
            elif isinstance(pending, TimeEvent):
                census[f"timer:{pending.name}"] += 1
        return StallReport(
            detected_at=detected_at,
            last_progress=self._last_progress,
            stall_timeout=float(self.config.stall_timeout or 0.0),
            reason=reason,
            node_last_activity=dict(self._node_activity),
            pending_events=dict(census),
            fault_counts=self.metrics.faults,
            down_nodes=tuple(sorted(self._down)),
            halted_nodes=tuple(sorted(self._halted)),
        )

    def _build_result(self, terminated: bool, wall: float) -> SimulationResult:
        metrics = self.metrics
        decided_values = {
            slot: metrics.decided_value(slot) for slot in metrics.decided_slots()
        }
        profile = None
        if self.profiler is not None:
            profile = self.profiler.build(
                wall_seconds=wall,
                events=self._events_processed,
                sim_time_ms=self.clock.now,
            )
        run_metrics = None
        if self.obs_metrics is not None:
            run_metrics = self.obs_metrics.build(sim_time_ms=self.clock.now)
        signals_summary = None
        if self.signals is not None:
            self.signals.finish(self.clock.now)
            signals_summary = self.signals.summary_dict()
        return SimulationResult(
            config=self.config,
            terminated=terminated,
            latency=metrics.latency(),
            latency_per_decision=metrics.latency_per_decision(),
            messages=metrics.counts.sent,
            messages_per_decision=metrics.messages_per_decision(),
            counts=metrics.counts,
            decisions=list(metrics.decisions),
            decided_values=decided_values,
            faulty=metrics.faulty,
            events_processed=self._events_processed,
            max_view=self._max_view,
            wall_clock_seconds=wall,
            trace=self.trace,
            fault_counts=metrics.faults,
            stall=self._stall,
            profile=profile,
            run_metrics=run_metrics,
            signals_summary=signals_summary,
            workload=(
                self._workload.build(self.clock.now)
                if self._workload is not None
                else None
            ),
            health=self.health.report() if self.health is not None else None,
        )
