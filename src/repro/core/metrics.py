"""Performance metrics and online safety checking.

The paper evaluates protocols with two low-level metrics (§II-C): **time
usage** (simulated time between protocol start and termination) and
**message usage** (number of transmitted messages).  This module collects
both, tracks per-slot decisions, detects termination, and verifies safety
(agreement between honest nodes) as decisions arrive.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from .errors import SafetyViolationError


@dataclass(frozen=True, slots=True)
class Decision:
    """A single ``decide`` report from an honest node."""

    node: int
    slot: int
    value: Any
    time: float


@dataclass(slots=True)
class MessageCounts:
    """Breakdown of network traffic during a run.

    Attributes:
        sent: messages transmitted over the network by honest nodes
            (broadcast expanded; loopback self-deliveries excluded).  This is
            the paper's "message usage".
        byzantine: messages transmitted by corrupted nodes or forged by the
            attacker.
        dropped: messages removed in flight (by the attacker or because the
            destination crashed).
        delivered: messages actually dispatched to a destination node.
    """

    sent: int = 0
    byzantine: int = 0
    dropped: int = 0
    delivered: int = 0
    bytes_sent: int = 0


@dataclass(slots=True)
class FaultCounts:
    """Counters of environmental fault events during a run.

    These count *benign environment* effects (the :mod:`repro.faults`
    layer), never attacker actions — keeping the attacker-vs-environment
    boundary visible in every result.  Like ``wall_clock_seconds``, fault
    counters are excluded from :func:`~repro.core.results.result_fingerprint`.

    Attributes:
        lost: messages dropped by a ``loss`` fault process.
        duplicated: extra copies injected by a ``duplicate`` process.
        corrupted: messages tampered by a ``corrupt`` process.
        rejected: tampered messages rejected at delivery (the receiver's
            signature/checksum verification stand-in).
        delayed: messages re-timed by a ``delay`` process.
        link_down: messages dropped inside a ``link-down`` window.
        crashes: node crash events.
        recoveries: node recovery events.
        crash_dropped: messages addressed to a crashed node at delivery time.
    """

    lost: int = 0
    duplicated: int = 0
    corrupted: int = 0
    rejected: int = 0
    delayed: int = 0
    link_down: int = 0
    crashes: int = 0
    recoveries: int = 0
    crash_dropped: int = 0

    def total(self) -> int:
        """Total number of fault events (all counters summed)."""
        return (
            self.lost + self.duplicated + self.corrupted + self.rejected
            + self.delayed + self.link_down + self.crashes + self.recoveries
            + self.crash_dropped
        )

    def any(self) -> bool:
        """True when any environmental fault occurred."""
        return self.total() > 0


class MetricsCollector:
    """Accumulates metrics for a single simulation run.

    Safety is enforced online: the first pair of honest decisions that
    disagree on a slot raises
    :class:`~repro.core.errors.SafetyViolationError` immediately (carrying
    both decisions), so violating executions fail fast and loudly.
    """

    def __init__(self, n: int, num_decisions: int) -> None:
        self.n = n
        self.num_decisions = num_decisions
        self.counts = MessageCounts()
        self.faults = FaultCounts()
        self.decisions: list[Decision] = []
        self._by_slot: dict[int, dict[int, Decision]] = defaultdict(dict)
        self._per_node: dict[int, int] = defaultdict(int)
        self._faulty: set[int] = set()
        #: Non-faulty nodes that have decided >= num_decisions slots.
        #: Maintained incrementally so the controller's per-event
        #: termination check is O(1) instead of scanning every node.
        self._satisfied: set[int] = set()
        self.start_time = 0.0
        self.end_time: float | None = None

    # -- faults --------------------------------------------------------------

    def mark_faulty(self, node: int) -> None:
        """Exclude ``node`` from honest-node accounting from now on.

        Called by the controller when the attacker crashes or corrupts a
        node.  Decisions the node made while honest remain valid.
        """
        self._faulty.add(node)
        self._satisfied.discard(node)

    @property
    def faulty(self) -> frozenset[int]:
        return frozenset(self._faulty)

    def honest_nodes(self) -> list[int]:
        """Ids of nodes currently considered honest."""
        return [i for i in range(self.n) if i not in self._faulty]

    # -- traffic ---------------------------------------------------------------

    def on_sent(self, byzantine: bool = False) -> None:
        if byzantine:
            self.counts.byzantine += 1
        else:
            self.counts.sent += 1

    def on_bytes(self, size: int) -> None:
        """Account estimated wire bytes for one transmitted message."""
        self.counts.bytes_sent += size

    def on_dropped(self) -> None:
        self.counts.dropped += 1

    def on_delivered(self) -> None:
        self.counts.delivered += 1

    # -- decisions ---------------------------------------------------------------

    def on_decision(self, node: int, slot: int, value: Any, time: float) -> None:
        """Record a decision; checks agreement and duplicate reports."""
        if node in self._faulty:
            return  # faulty nodes' reports are ignored entirely
        slot_decisions = self._by_slot[slot]
        if node in slot_decisions:
            existing = slot_decisions[node]
            if existing.value != value:
                raise SafetyViolationError(
                    f"node {node} decided twice for slot {slot}: "
                    f"{existing.value!r} then {value!r}"
                )
            return  # idempotent duplicate
        for other in slot_decisions.values():
            if other.value != value and other.node not in self._faulty:
                raise SafetyViolationError(
                    f"slot {slot}: node {node} decided {value!r} at {time:.1f} "
                    f"but node {other.node} decided {other.value!r} at {other.time:.1f}"
                )
        decision = Decision(node=node, slot=slot, value=value, time=time)
        slot_decisions[node] = decision
        self.decisions.append(decision)
        self._per_node[node] += 1
        if self._per_node[node] >= self.num_decisions:
            self._satisfied.add(node)

    def decisions_of(self, node: int) -> int:
        """How many slots ``node`` has decided."""
        return self._per_node[node]

    def decided_value(self, slot: int) -> Any:
        """The agreed value for ``slot`` (any honest decision; they agree)."""
        for decision in self._by_slot.get(slot, {}).values():
            if decision.node not in self._faulty:
                return decision.value
        raise KeyError(f"no honest decision recorded for slot {slot}")

    def decided_slots(self) -> list[int]:
        """Slots with at least one honest decision, sorted."""
        return sorted(
            slot
            for slot, per_node in self._by_slot.items()
            if any(d.node not in self._faulty for d in per_node.values())
        )

    # -- termination ---------------------------------------------------------------

    def terminated(self) -> bool:
        """True once every honest node has decided ``num_decisions`` slots.

        O(1): ``_satisfied`` only ever contains non-faulty nodes
        (``on_decision`` ignores faulty reporters and ``mark_faulty``
        evicts), so it covers the honest set exactly when every honest node
        has decided enough slots.
        """
        honest = self.n - len(self._faulty)
        return honest > 0 and len(self._satisfied) >= honest

    def finish(self, time: float) -> None:
        self.end_time = time

    # -- derived results ---------------------------------------------------------------

    def latency(self) -> float:
        """Total time usage: start to termination (or to horizon)."""
        end = self.end_time if self.end_time is not None else 0.0
        return end - self.start_time

    def latency_per_decision(self) -> float:
        """Average latency per decided value — the paper's per-decision
        metric for pipelined protocols (§IV)."""
        return self.latency() / max(1, self.num_decisions)

    def messages_per_decision(self) -> float:
        """Average honest message count per decided value."""
        return self.counts.sent / max(1, self.num_decisions)

    def slot_completion_times(self) -> dict[int, float]:
        """For each decided slot, the time the *last* honest node decided it
        (only slots every honest node has decided are included)."""
        honest = set(self.honest_nodes())
        out: dict[int, float] = {}
        for slot, per_node in self._by_slot.items():
            deciders = {d.node for d in per_node.values() if d.node in honest}
            if honest <= deciders:
                out[slot] = max(
                    d.time for d in per_node.values() if d.node in honest
                )
        return out
