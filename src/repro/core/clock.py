"""The simulation clock.

Following the standard discrete-event technique the paper adopts (§III-A2),
time is purely virtual: the clock only moves when the controller pops an
event, jumping directly to that event's timestamp.  All times are in
milliseconds, matching the paper's units for delays and timeouts.
"""

from __future__ import annotations

from .errors import SchedulingError


class SimulationClock:
    """Monotonic virtual clock advanced by the controller.

    The clock refuses to move backwards; the event queue's total order makes
    a backwards move impossible in a correct run, so an attempt indicates a
    scheduling bug and raises :class:`~repro.core.errors.SchedulingError`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Jump the clock forward to ``time``.

        Raises:
            SchedulingError: if ``time`` precedes the current time.
        """
        if time < self._now:
            raise SchedulingError(
                f"clock cannot move backwards: {time:.3f} < {self._now:.3f}"
            )
        # Called once per event: skip the float() rewrap for the common case
        # of an already-float timestamp, coerce anything else exactly as
        # before so stored time is always a float.
        self._now = time if type(time) is float else float(time)

    def __repr__(self) -> str:
        return f"SimulationClock(now={self._now:.3f})"
