"""Protocol messages exchanged between nodes.

A :class:`Message` is the unit the network module transports and the unit the
attacker module can observe, drop, delay, modify, or forge.  The payload is a
plain ``dict`` so protocols stay serialization-agnostic; by convention every
payload carries a ``"type"`` key naming the protocol message kind (e.g.
``"PRE-PREPARE"``, ``"VOTE"``).
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

#: Sentinel destination meaning "every node, including the sender".
BROADCAST: int = -1

_message_ids = itertools.count()


def _next_message_id() -> int:
    return next(_message_ids)


#: Immutable leaf types a payload deep copy may share between copies.
#: ``copy.deepcopy`` returns these unchanged too (atomic types), so sharing
#: them is observationally identical — and skips the deepcopy machinery.
_ATOMIC_TYPES = frozenset(
    {int, float, str, bool, bytes, complex, type(None)}
)


def deep_copy_payload(value: Any) -> Any:
    """Structurally copy a payload value.

    Semantically equivalent to ``copy.deepcopy`` for the JSON-ish values
    protocol payloads are made of (nested dicts / lists / tuples over
    scalars), but an order of magnitude faster because it dispatches on the
    exact container type instead of walking deepcopy's general machinery.
    Unrecognised objects (custom classes, sets of mutables...) fall back to
    ``copy.deepcopy``, so arbitrary payload values remain supported.
    """
    cls = type(value)
    if cls in _ATOMIC_TYPES:
        return value
    if cls is dict:
        return {key: deep_copy_payload(item) for key, item in value.items()}
    if cls is list:
        return [deep_copy_payload(item) for item in value]
    if cls is tuple:
        return tuple(deep_copy_payload(item) for item in value)
    return copy.deepcopy(value)


@dataclass(slots=True)
class Message:
    """A single protocol message in flight.

    Attributes:
        source: id of the sending node.  For attacker-forged messages this is
            the id being *impersonated*; the crypto layer restricts forgery
            to corrupted signers.
        dest: id of the receiving node (broadcasts are expanded into unicast
            messages by the network module before delay assignment, mirroring
            the paper's per-message ``delay`` variable).
        payload: protocol-defined content; ``payload["type"]`` names the kind.
        sent_at: simulation time (ms) at which the message entered the
            network module.
        delay: transit delay (ms) assigned by the network module and possibly
            altered by the attacker.  ``None`` until assigned.
        msg_id: unique id, used for tracing and deterministic tie-breaking.
        forged: True when the attacker inserted this message rather than an
            honest node sending it.
        corrupted: True when an environmental ``corrupt`` fault tampered the
            payload in flight.  Receivers reject corrupted messages at
            delivery (the signature/checksum verification stand-in); they
            are never dispatched to protocol logic.
        cause: causal-lineage id of the event being handled when this
            message was submitted (``"m<msg_id>"`` for a message delivery,
            ``"t<timer_id>"`` for a timer, ``"s<node>"`` for ``on_start``,
            ``"a"`` for attacker setup).  Pure observability metadata: it is
            assigned by the network module outside the RNG path, recorded
            into trace events, and never read by protocol or engine logic.
        relay_from: the node that physically transmitted this copy when a
            ``tree``/``gossip`` dissemination overlay relayed the broadcast
            (``None`` for direct sends).  :attr:`source` always stays the
            protocol-level originator — signatures, vote counting, and the
            attacker's corruption accounting key on the origin — while link
            scoped environmental faults match on the physical hop.
        payload_shared: True while :attr:`payload` is aliased between the
            copies of one broadcast (copy-on-write).  Receivers treat
            payloads as read-only by contract; any writer (the attacker
            proxy path) must call :meth:`own_payload` first.
    """

    source: int
    dest: int
    payload: dict[str, Any]
    sent_at: float = 0.0
    delay: float | None = None
    msg_id: int = field(default_factory=_next_message_id)
    forged: bool = False
    corrupted: bool = False
    cause: str | None = None
    relay_from: int | None = None
    payload_shared: bool = False

    @property
    def type(self) -> str:
        """The protocol message kind, taken from ``payload["type"]``."""
        return str(self.payload.get("type", "?"))

    @property
    def deliver_at(self) -> float:
        """Scheduled delivery time; requires :attr:`delay` to be assigned."""
        if self.delay is None:
            raise ValueError("message has no delay assigned yet")
        return self.sent_at + self.delay

    def copy_for(self, dest: int, *, share_payload: bool = False) -> "Message":
        """Return an independent copy addressed to ``dest``.

        Used by the network module to expand a broadcast into unicasts; each
        copy gets its own id and — by default — an independent (deep-copied)
        payload so the attacker may tamper with one recipient's copy without
        affecting the others.

        With ``share_payload=True`` the copy aliases this message's payload
        and is flagged :attr:`payload_shared` (copy-on-write): the
        dissemination overlays use this to avoid materializing n structural
        payload copies per broadcast.  Any path that may mutate the payload
        (the attacker hand-off) un-shares via :meth:`own_payload` first.
        """
        if share_payload:
            payload = self.payload
            self.payload_shared = True
        else:
            payload = deep_copy_payload(self.payload)
        return Message(
            source=self.source,
            dest=dest,
            payload=payload,
            sent_at=self.sent_at,
            forged=self.forged,
            cause=self.cause,
            payload_shared=share_payload,
        )

    def own_payload(self) -> None:
        """Replace a shared payload with a private structural copy.

        No-op for already-private payloads.  Call before any in-place
        payload mutation of a broadcast copy (copy-on-write discipline).
        """
        if self.payload_shared:
            self.payload = deep_copy_payload(self.payload)
            self.payload_shared = False

    def describe(self) -> str:
        """Short human-readable summary used in traces and logs."""
        return f"{self.type} {self.source}->{self.dest} @{self.sent_at:.1f}"


#: Fixed per-message envelope overhead (headers, routing, signature tag).
MESSAGE_OVERHEAD_BYTES: int = 96

#: Lazily bound reference to :func:`repro.crypto.signatures.canonical`
#: (import deferred to break the crypto <-> core import cycle, then cached
#: so the hot path never repeats the module lookup).
_canonical: Callable[[Any], str] | None = None


def estimate_message_bytes(message: "Message") -> int:
    """Estimated wire size of ``message`` in bytes.

    The paper measures communication cost in message *counts* but notes the
    total bytes "can be reconstructed via estimating the size of each
    message and calculating the sum" (§II-C).  The estimate here is the
    canonical JSON length of the payload plus a fixed envelope overhead —
    deterministic, so byte totals are reproducible.
    """
    global _canonical
    canonical = _canonical
    if canonical is None:
        from ..crypto.signatures import canonical as _imported

        canonical = _canonical = _imported
    return MESSAGE_OVERHEAD_BYTES + len(canonical(message.payload))


def payload_matches(payload: Mapping[str, Any], **expected: Any) -> bool:
    """True when every key in ``expected`` is present and equal in ``payload``.

    A small helper protocols use to filter message logs, e.g.
    ``payload_matches(m.payload, type="VOTE", view=3)``.
    """
    return all(payload.get(key) == value for key, value in expected.items())
