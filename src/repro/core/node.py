"""The node abstraction protocols are written against.

The paper's consensus module exposes three functions (§III-A3): a message
callback (``onMsgEvent``), a timer callback (``onTimeEvent``), and a result
channel (``reportToSystem``).  :class:`Node` maps these to ``on_message``,
``on_timer``, and ``decide``/``report``, and adds the convenience helpers
protocols need (``send``, ``broadcast``, ``set_timer``).

Nodes never touch the event queue, clock, or network directly; they interact
through a :class:`NodeEnvironment` facade implemented by the controller.
This keeps protocol code identical whether it runs under the fast
message-level simulator or the packet-level baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Protocol

from ..observability.logging import SimLogger, get_logger
from .events import TimeEvent
from .message import BROADCAST, Message


@dataclass(frozen=True, slots=True)
class TimerHandle:
    """Opaque reference to a pending timer, for cancellation."""

    timer_id: int
    queue_handle: int


class NodeEnvironment(Protocol):
    """Services the controller provides to nodes (and only these)."""

    @property
    def now(self) -> float:
        """Current simulation time (ms)."""

    @property
    def n(self) -> int:
        """Total number of nodes."""

    @property
    def f(self) -> int:
        """Number of tolerated faults."""

    @property
    def lam(self) -> float:
        """The protocol's configured timeout parameter lambda (ms)."""

    @property
    def seed(self) -> int:
        """The run's root random seed (shared setup, e.g. VRF keys)."""

    def protocol_param(self, name: str, default: Any = None) -> Any:
        """Look up an entry of ``config.protocol_params``."""

    def send_message(self, message: Message) -> None:
        """Hand a message to the network module."""

    def register_timer(self, owner: int, delay: float, name: str, data: Any) -> TimerHandle:
        """Schedule a time event for ``owner`` after ``delay`` ms."""

    def cancel_timer(self, handle: TimerHandle) -> None:
        """Cancel a pending timer (no-op if already fired)."""

    def report_decision(self, node_id: int, slot: int, value: Any) -> None:
        """Record that ``node_id`` decided ``value`` for ``slot``."""

    def report_to_system(self, node_id: int, kind: str, **fields: Any) -> None:
        """Record a protocol-defined trace event (view changes, phases...)."""

    def report_phase(self, node_id: int, phase: str, **fields: Any) -> None:
        """Record a protocol phase transition (pure observability; unlike
        :meth:`report_to_system` it has no engine side effects)."""

    def rng(self, name: str) -> random.Random:
        """A named deterministic random stream."""


class Node:
    """Base class for honest protocol replicas.

    Subclasses implement :meth:`on_start`, :meth:`on_message`, and
    :meth:`on_timer`.  The controller guarantees that crashed or corrupted
    nodes stop receiving callbacks, so protocol code never needs to model
    its own failure.

    Attributes:
        id: this node's identifier in ``range(n)``.
        env: the controller facade (see :class:`NodeEnvironment`).
    """

    #: Whether this protocol supports a crashed replica rejoining the run
    #: (the environmental crash–recovery fault, :mod:`repro.faults`).
    #: Protocols that cannot support rejoin leave this False and the
    #: controller rejects crash+recovery schedules for them up front.
    supports_recovery: bool = False

    def __init__(self, node_id: int, env: NodeEnvironment) -> None:
        self.id = node_id
        self.env = env
        self._decided_log: list[tuple[int, Any]] = []
        self._log: SimLogger | None = None
        # n and f are fixed for a run, so quorum sizes are computed once per
        # (node, kind) — protocols call quorum() on every vote delivery.
        self._quorum_cache: dict[str, int] = {}

    # -- lifecycle callbacks (override in subclasses) ----------------------

    def on_start(self) -> None:
        """Called once at time 0, before any event is dispatched."""

    def on_message(self, message: Message) -> None:
        """Called when a message event for this node fires."""

    def on_timer(self, timer: TimeEvent) -> None:
        """Called when a time event registered by this node fires."""

    def on_recover(self) -> None:
        """Called when the environment recovers this node from a crash.

        The crash model assumes stable storage: in-memory protocol state
        survives, but every pending timer was lost and messages addressed to
        the node while it was down were dropped.  The safe default replays
        the node's own decided slots (idempotent — the metrics collector
        deduplicates equal reports), so a recovered replica re-asserts what
        it already agreed to.  Protocols that set ``supports_recovery``
        extend this to re-arm their timers and resume participation.
        """
        self.log.debug("recovered from crash", replayed_slots=len(self._decided_log))
        for slot, value in self._decided_log:
            self.env.report_decision(self.id, slot, value)

    # -- convenience properties --------------------------------------------

    @property
    def log(self) -> SimLogger:
        """Structured per-replica logger (``repro.protocol.n<id>``).

        Built lazily so replicas that never log pay nothing; stamps records
        with the simulation clock via the environment facade.
        """
        log = self._log
        if log is None:
            log = SimLogger(get_logger("protocol", node=self.id), clock=self.env, node=self.id)
            self._log = log
        return log

    @property
    def now(self) -> float:
        return self.env.now

    @property
    def n(self) -> int:
        return self.env.n

    @property
    def f(self) -> int:
        return self.env.f

    @property
    def lam(self) -> float:
        return self.env.lam

    def quorum(self, kind: str = "byzantine") -> int:
        """Common quorum sizes.

        ``"byzantine"`` returns ``ceil((n+f+1)/2)`` — the smallest set size
        whose pairwise intersections contain at least one honest node (for
        the canonical ``n = 3f+1`` this is the familiar ``2f+1``; for
        ``n > 3f+1`` a flat ``2f+1`` would be *unsafe*: two disjoint
        "quorums" could decide different values).  ``"available"`` returns
        ``n - f`` (every honest node), ``"plurality"`` returns ``f + 1``
        (at least one honest node).
        """
        size = self._quorum_cache.get(kind)
        if size is None:
            if kind == "byzantine":
                size = (self.n + self.f) // 2 + 1
            elif kind == "available":
                size = self.n - self.f
            elif kind == "plurality":
                size = self.f + 1
            else:
                raise ValueError(f"unknown quorum kind {kind!r}")
            self._quorum_cache[kind] = size
        return size

    # -- actions ------------------------------------------------------------

    def send(self, dest: int, **payload: Any) -> None:
        """Send ``payload`` to node ``dest`` through the network module."""
        self.env.send_message(Message(source=self.id, dest=dest, payload=payload))

    def broadcast(self, **payload: Any) -> None:
        """Send ``payload`` to every node, including this one.

        The self-addressed copy is delivered like any other message (with a
        sampled network delay of zero enforced by the network module for
        loopback), so protocol handlers can treat their own messages
        uniformly.
        """
        self.env.send_message(Message(source=self.id, dest=BROADCAST, payload=payload))

    def set_timer(self, delay: float, name: str, **data: Any) -> TimerHandle:
        """Register a time event ``delay`` ms from now."""
        return self.env.register_timer(self.id, delay, name, data)

    def cancel_timer(self, handle: TimerHandle | None) -> None:
        """Cancel ``handle`` if it is a live timer; ``None`` is accepted."""
        if handle is not None:
            self.env.cancel_timer(handle)

    def decide(self, slot: int, value: Any) -> None:
        """Report a decision for consensus instance ``slot``.

        Equivalent to the paper's ``reportToSystem``: the controller records
        the decision, checks safety against other honest nodes, and
        terminates the run once every honest node has decided the configured
        number of slots.
        """
        self._decided_log.append((slot, value))
        self.env.report_decision(self.id, slot, value)

    def report(self, kind: str, **fields: Any) -> None:
        """Record a protocol-level trace event (e.g. a view change)."""
        self.env.report_to_system(self.id, kind, **fields)

    def phase(self, name: str, **fields: Any) -> None:
        """Tag this replica's current protocol phase (e.g. ``"prepare"``).

        A no-op-by-default observability hook: it records a ``"phase"``
        trace event when tracing is on, never touches engine state (no
        watchdog/activity side effects), and silently does nothing under
        environments that predate the hook — so instrumenting a protocol
        can never change its behaviour.
        """
        report = getattr(self.env, "report_phase", None)
        if report is not None:
            report(self.id, name, **fields)

    def rng(self, name: str) -> random.Random:
        """Deterministic per-purpose random stream, namespaced by node id."""
        return self.env.rng(f"node.{self.id}.{name}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id})"
