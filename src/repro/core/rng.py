"""Seeded randomness with named substreams.

Every source of randomness in a simulation (network delays, protocol coin
flips, attacker choices, VRF seeds) draws from its own substream derived from
the single configuration seed.  Substreams are keyed by name, so adding a new
consumer never perturbs the draws seen by existing ones — experiment results
stay reproducible across library versions that add features.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 over the pair, so children are statistically independent and
    stable across platforms and Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RandomSource:
    """Factory for named, reproducible random substreams.

    Example:
        >>> source = RandomSource(seed=7)
        >>> delays = source.numpy("network.delay")
        >>> coins = source.python("protocol.coin")
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._issued: dict[str, int] = {}

    def child_seed(self, name: str) -> int:
        """The derived seed for substream ``name`` (always the same value)."""
        if name not in self._issued:
            self._issued[name] = derive_seed(self.seed, name)
        return self._issued[name]

    def numpy(self, name: str) -> np.random.Generator:
        """A fresh numpy :class:`~numpy.random.Generator` for ``name``."""
        return np.random.default_rng(self.child_seed(name))

    def python(self, name: str) -> random.Random:
        """A fresh :class:`random.Random` for ``name``."""
        return random.Random(self.child_seed(name))

    def issued_streams(self) -> Iterator[str]:
        """Names of every substream handed out so far (diagnostics)."""
        return iter(sorted(self._issued))

    def __repr__(self) -> str:
        return f"RandomSource(seed={self.seed}, streams={len(self._issued)})"
