"""``repro serve`` — the experiment-store dashboard server.

A deliberately small HTTP layer over :class:`~repro.store.ExperimentStore`:
Python's stdlib :class:`~http.server.ThreadingHTTPServer` plus one embedded
HTML page (:mod:`repro.serve.dashboard`).  No web framework, no template
engine, no static asset pipeline — the simulator's zero-runtime-dependency
policy extends to its observability surface.

Routes (all JSON except ``/``):

==============================================  ================================
``GET /``                                       the dashboard page
``GET /api/meta``                               store path, schema, version
``GET /api/experiments``                        all experiments, newest first
``GET /api/experiments/<id>``                   experiment + runs + artifacts
``GET /api/experiments/<a>/diff/<b>``           fingerprint diff of two batches
``GET /api/experiments/<id>/health``            fleet health: anomaly timeline
``GET /api/runs/<id>``                          one run row
``GET /api/runs/<id>/analysis``                 quorums/phases/critical paths
==============================================  ================================

The analysis endpoint re-reads the run's JSONL trace (via the stored
``trace_path`` pointer) through the existing analyzers —
:mod:`repro.observability.causality`, :mod:`~repro.observability.phases`
and :mod:`~repro.observability.inspect` — so the dashboard's drill-down
views are exactly what ``repro inspect`` prints, rendered instead of
printed.  A run without a trace answers ``{"available": false}`` rather
than erroring: traces are opt-in and the dashboard must degrade.

Live progress needs no push channel: the store updates an experiment's
``done_runs`` counter transactionally per completed run, so the page simply
polls ``/api/experiments`` while any experiment is ``running``.  Each
request opens its own :class:`ExperimentStore` handle (sqlite connections
are cheap and this sidesteps cross-thread connection sharing entirely);
WAL mode keeps those readers from ever blocking the writing fleet.
"""

from __future__ import annotations

import json
import os
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .. import __version__
from ..store import ExperimentStore, StoreError
from .dashboard import PAGE_HTML

_RUN_ANALYSIS_LIMIT = 200  # decisions/views shipped per analysis response


def run_analysis(trace_path: str) -> dict[str, Any]:
    """Drill-down payload for one stored trace, via the inspect analyzers.

    Returns ``{"available": False, "reason": ...}`` when the trace file is
    gone or unreadable — the store keeps pointers, not copies, and a
    deleted temp directory must not take the dashboard down with it.
    """
    if not os.path.exists(trace_path):
        return {"available": False, "reason": f"trace file missing: {trace_path}"}
    from ..observability.causality import (
        CausalityGraph,
        critical_paths,
        quorum_timelines,
    )
    from ..observability.inspect import analyze_trace
    from ..observability.phases import analyze_phases

    try:
        report = analyze_trace(trace_path)
        graph = CausalityGraph.build(trace_path)
        phases = analyze_phases(trace_path)
    except (OSError, ValueError, KeyError) as exc:
        return {"available": False, "reason": f"trace unreadable: {exc}"}

    quorums = [
        {
            "slot": t.decision.slot,
            "node": t.decision.node,
            "msg_type": t.msg_type,
            "quorum_size": t.quorum_size,
            "first_arrival": t.first_arrival,
            "closed_at": t.closed_at,
            "straggler": t.straggler,
            "wasted": t.wasted,
        }
        for t in quorum_timelines(graph)[:_RUN_ANALYSIS_LIMIT]
    ]
    paths = [
        {
            "slot": p.decision.slot,
            "node": p.decision.node,
            "hops": p.hops,
            "duration": p.duration_ms,
            "complete": p.complete,
            "steps": [
                {"time": s.time, "kind": s.kind, "node": s.node, "label": s.label}
                for s in p.steps
            ],
        }
        for p in critical_paths(graph)[:_RUN_ANALYSIS_LIMIT]
    ]
    phase_dict = phases.to_dict()
    per_view = [
        {
            "view": entry["view"],
            "node": entry["node"],
            "durations": entry["phases_ms"],
            "duration": entry["duration_ms"],
        }
        for entry in phase_dict["per_view"][:_RUN_ANALYSIS_LIMIT]
    ]
    return {
        "available": True,
        "report": report.to_dict(),
        "quorums": quorums,
        "critical_paths": paths,
        "phases": {
            "totals": phase_dict["phase_totals_ms"],
            "per_view": per_view,
        },
    }


class DashboardHandler(BaseHTTPRequestHandler):
    """Route table for the dashboard; one store handle per request."""

    # Set by create_server on the handler subclass it builds.
    store_path: str = ""
    quiet: bool = True

    _ROUTES = (
        (re.compile(r"^/$"), "page"),
        (re.compile(r"^/api/meta$"), "meta"),
        (re.compile(r"^/api/experiments$"), "experiments"),
        (re.compile(r"^/api/experiments/(\d+)$"), "experiment"),
        (re.compile(r"^/api/experiments/(\d+)/diff/(\d+)$"), "diff"),
        (re.compile(r"^/api/experiments/(\d+)/health$"), "health"),
        (re.compile(r"^/api/runs/(\d+)$"), "run"),
        (re.compile(r"^/api/runs/(\d+)/analysis$"), "analysis"),
    )

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
        if not self.quiet:
            super().log_message(fmt, *args)

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload: dict[str, Any], code: int = 200) -> None:
        body = json.dumps(payload).encode()
        self._send(code, body, "application/json; charset=utf-8")

    def _error(self, code: int, message: str) -> None:
        self._json({"error": message}, code=code)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        for pattern, name in self._ROUTES:
            match = pattern.match(path)
            if match:
                handler = getattr(self, f"_get_{name}")
                try:
                    handler(*(int(g) for g in match.groups()))
                except StoreError as exc:
                    self._error(404, str(exc))
                except BrokenPipeError:  # client went away mid-response
                    pass
                return
        self._error(404, f"no such endpoint: {path}")

    def _open(self) -> ExperimentStore:
        # create=False: a store deleted mid-serve must 404 per request, not
        # be silently re-materialized as an empty database.
        return ExperimentStore(self.store_path, create=False)

    # -- endpoints -----------------------------------------------------------

    def _get_page(self) -> None:
        self._send(200, PAGE_HTML.encode(), "text/html; charset=utf-8")

    def _get_meta(self) -> None:
        from ..store import SCHEMA_VERSION

        self._json({
            "store": self.store_path,
            "schema_version": SCHEMA_VERSION,
            "version": __version__,
        })

    def _get_experiments(self) -> None:
        store = self._open()
        try:
            rows = store.experiments()
        finally:
            store.close()
        self._json({"experiments": [row.to_dict() for row in rows]})

    def _get_experiment(self, experiment_id: int) -> None:
        store = self._open()
        try:
            experiment = store.experiment(experiment_id)
            runs = store.runs(experiment_id)
            artifacts = store.artifacts(experiment_id)
        finally:
            store.close()
        self._json({
            "experiment": experiment.to_dict(),
            "runs": [row.to_dict() for row in runs],
            "artifacts": [row.to_dict() for row in artifacts],
        })

    def _get_diff(self, a: int, b: int) -> None:
        store = self._open()
        try:
            diff = store.diff(a, b)
        finally:
            store.close()
        self._json(diff.to_dict())

    def _get_health(self, experiment_id: int) -> None:
        """Fleet health rollup: every monitored run's stored anomalies,
        merged into one timeline (ordered by simulated time, then run)."""
        store = self._open()
        try:
            # Raises StoreError -> 404 for an unknown experiment id.
            store.experiment(experiment_id)
            runs = store.runs(experiment_id)
        finally:
            store.close()
        monitored = [row for row in runs if row.anomaly_count is not None]
        anomalies: list[dict[str, Any]] = []
        detectors: dict[str, int] = {}
        for row in monitored:
            for event in (row.health or {}).get("events", []):
                entry = dict(event)
                entry["run_index"] = row.run_index
                entry["run_id"] = row.id
                anomalies.append(entry)
                detector = str(event.get("detector", "?"))
                detectors[detector] = detectors.get(detector, 0) + 1
        anomalies.sort(key=lambda e: (e.get("time", 0.0), e["run_index"]))
        fairness = [
            row.min_fairness for row in monitored
            if row.min_fairness is not None
        ]
        self._json({
            "monitored_runs": len(monitored),
            "anomaly_total": sum(row.anomaly_count or 0 for row in monitored),
            "min_fairness": min(fairness) if fairness else None,
            "detectors": dict(sorted(detectors.items())),
            "anomalies": anomalies[:_RUN_ANALYSIS_LIMIT],
        })

    def _get_run(self, run_id: int) -> None:
        store = self._open()
        try:
            row = store.run(run_id)
        finally:
            store.close()
        self._json({"run": row.to_dict()})

    def _get_analysis(self, run_id: int) -> None:
        store = self._open()
        try:
            row = store.run(run_id)
        finally:
            store.close()
        if not row.trace_path:
            self._json({"available": False, "reason": "run recorded no trace"})
            return
        self._json(run_analysis(row.trace_path))


def create_server(
    store_path: str,
    host: str = "127.0.0.1",
    port: int = 8008,
    *,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Build (but do not start) the dashboard server.

    Opens the store once up front so a missing path or a schema mismatch
    fails here, loudly, instead of per-request — serving a store that does
    not exist yet would just materialize an empty database over a typo.
    ``port=0`` asks the OS for a free port — the tests use this; read
    ``server.server_address[1]``.
    """
    probe = ExperimentStore(store_path, create=False)
    probe.close()

    handler = type(
        "BoundDashboardHandler",
        (DashboardHandler,),
        {"store_path": str(store_path), "quiet": quiet},
    )
    return ThreadingHTTPServer((host, port), handler)


def serve(store_path: str, host: str = "127.0.0.1", port: int = 8008) -> None:
    """Run the dashboard until interrupted (the ``repro serve`` entry)."""
    server = create_server(store_path, host, port, quiet=False)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: dashboard on http://{bound_host}:{bound_port}/")
    print(f"repro serve: store {store_path}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nrepro serve: stopped")
    finally:
        server.server_close()
