"""The embedded single-page dashboard served at ``/`` by ``repro serve``.

One self-contained HTML document — no external scripts, stylesheets, fonts,
or CDNs — so the dashboard works on an air-gapped experiment host exactly
like the rest of the simulator.  All data arrives through the JSON API
(:mod:`repro.serve.server`); the page polls the list/detail endpoints every
two seconds while any experiment is still ``running``, which is what makes
an in-flight :class:`~repro.parallel.ParallelRunner` fleet watchable live.

Palette note: series and status colors follow a validated
colorblind-safe ordering (categorical slots in fixed order, status colors
reserved for run states and always paired with a text label); light and
dark schemes are both defined and follow the viewer's OS preference.
"""

from __future__ import annotations

PAGE_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro experiments</title>
<style>
:root {
  color-scheme: light;
  --surface: #fcfcfb; --panel: #f3f2ef; --border: #dddcd7;
  --text: #0b0b0b; --text-2: #52514e;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
  --good: #0ca30c; --warn: #fab219; --crit: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --panel: #242422; --border: #3a3a37;
    --text: #ffffff; --text-2: #c3c2b7;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
  }
}
* { box-sizing: border-box; }
body { margin: 0; background: var(--surface); color: var(--text);
       font: 14px/1.45 ui-sans-serif, system-ui, sans-serif; }
header { padding: 10px 18px; border-bottom: 1px solid var(--border);
         display: flex; gap: 14px; align-items: baseline; }
header h1 { font-size: 16px; margin: 0; }
header .meta { color: var(--text-2); font-size: 12px; }
main { display: grid; grid-template-columns: minmax(330px, 420px) 1fr;
       gap: 0; min-height: calc(100vh - 44px); }
#list { border-right: 1px solid var(--border); padding: 12px;
        overflow-y: auto; }
#detail { padding: 14px 18px; overflow-y: auto; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th { text-align: left; color: var(--text-2); font-weight: 600;
     border-bottom: 1px solid var(--border); padding: 4px 8px 4px 0;
     white-space: nowrap; }
td { padding: 4px 8px 4px 0; border-bottom: 1px solid var(--border);
     vertical-align: top; }
tr.sel td { background: var(--panel); }
tr.click { cursor: pointer; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.status { display: inline-flex; align-items: center; gap: 5px;
          white-space: nowrap; }
.dot { width: 8px; height: 8px; border-radius: 50%; display: inline-block; }
.status.running .dot { background: var(--s1); }
.status.complete .dot { background: var(--good); }
.status.failed .dot { background: var(--crit); }
.status.stalled .dot { background: var(--warn); }
.bar { height: 6px; background: var(--panel); border-radius: 3px;
       overflow: hidden; margin-top: 3px; }
.bar > i { display: block; height: 100%; background: var(--s1);
           border-radius: 3px; }
h2 { font-size: 15px; margin: 18px 0 6px; }
h2:first-child { margin-top: 2px; }
.cards { display: flex; flex-wrap: wrap; gap: 10px; margin: 8px 0; }
.card { background: var(--panel); border: 1px solid var(--border);
        border-radius: 6px; padding: 8px 12px; min-width: 110px; }
.card b { display: block; font-size: 17px;
          font-variant-numeric: tabular-nums; }
.card span { color: var(--text-2); font-size: 12px; }
.stack { display: flex; height: 14px; border-radius: 4px; overflow: hidden;
         background: var(--panel); }
.stack > i { display: block; height: 100%;
             border-right: 2px solid var(--surface); }
.stack > i:last-child { border-right: none; }
.legend { display: flex; flex-wrap: wrap; gap: 12px; margin: 5px 0 10px;
          font-size: 12px; color: var(--text-2); }
.legend .dot { width: 9px; height: 9px; border-radius: 2px; }
.tl { position: relative; height: 16px; background: var(--panel);
      border-radius: 3px; }
.tl .span { position: absolute; top: 5px; height: 6px; background: var(--s1);
            border-radius: 3px; }
.tl .mark { position: absolute; top: 2px; width: 4px; height: 12px;
            border-radius: 2px; background: var(--s2);
            box-shadow: 0 0 0 2px var(--surface); }
.muted { color: var(--text-2); }
button, select { background: var(--panel); color: var(--text);
  border: 1px solid var(--border); border-radius: 5px; padding: 3px 10px;
  font: inherit; cursor: pointer; }
button:hover { border-color: var(--s1); }
.controls { display: flex; gap: 8px; align-items: center; margin: 6px 0; }
pre { background: var(--panel); border: 1px solid var(--border);
      border-radius: 6px; padding: 8px 10px; overflow-x: auto;
      font-size: 12px; }
.crumbs { font-size: 12px; color: var(--text-2); margin-bottom: 8px; }
.crumbs a { color: var(--s1); cursor: pointer; text-decoration: none; }
.fp { font-family: ui-monospace, monospace; font-size: 11px; }
.ok-fp { color: var(--good); } .bad-fp { color: var(--crit); }
</style>
</head>
<body>
<header>
  <h1>repro experiments</h1>
  <span class="meta" id="meta">loading…</span>
  <span class="meta" id="poll"></span>
</header>
<main>
  <div id="list"></div>
  <div id="detail"><p class="muted">Select an experiment.</p></div>
</main>
<script>
"use strict";
const $ = (sel, el) => (el || document).querySelector(sel);
const esc = s => String(s).replace(/[&<>"]/g,
  c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
const fmt = (x, d) => x == null ? "–"
  : Number(x).toLocaleString("en-US", {maximumFractionDigits: d ?? 1});
const PHASE_SLOTS = ["--s1","--s2","--s3","--s4","--s5","--s6","--s7","--s8"];
let state = { experiments: [], selected: null, run: null, diffWith: null };

async function api(path) {
  const res = await fetch(path);
  if (!res.ok) throw new Error(path + " -> " + res.status);
  return res.json();
}

function statusCell(st) {
  return `<span class="status ${esc(st)}"><span class="dot"></span>${esc(st)}</span>`;
}

function renderList() {
  const rows = state.experiments.map(e => {
    const pct = e.total_runs ? (100 * e.done_runs / e.total_runs) : 0;
    return `<tr class="click ${state.selected === e.id ? "sel" : ""}"
        onclick="selectExperiment(${e.id})">
      <td class="num">${e.id}</td>
      <td>${esc(e.name)}<div class="bar"><i style="width:${pct}%"></i></div></td>
      <td>${esc(e.kind)}</td>
      <td>${statusCell(e.status)}</td>
      <td class="num">${e.done_runs}/${e.total_runs}</td>
    </tr>`;
  }).join("");
  $("#list").innerHTML = `<table>
    <thead><tr><th>id</th><th>experiment</th><th>kind</th>
    <th>status</th><th class="num">runs</th></tr></thead>
    <tbody>${rows || ""}</tbody></table>` +
    (rows ? "" : '<p class="muted">No experiments recorded yet.</p>');
}

function healthCell(r) {
  // Per-run anomaly strip: "–" when the run was not health-monitored,
  // green "healthy" at zero anomalies, warn/crit count otherwise.
  if (r.anomaly_count == null) return '<span class="muted">–</span>';
  if (!r.anomaly_count)
    return '<span class="status complete"><span class="dot"></span>healthy</span>';
  const crit = ((r.health || {}).events || [])
    .some(e => e.severity === "critical");
  return `<span class="status ${crit ? "failed" : "stalled"}">` +
    `<span class="dot"></span>${r.anomaly_count}</span>`;
}

function runRow(r) {
  const lat = r.status === "failed"
    ? `<span class="status failed"><span class="dot"></span>failed</span>`
    : fmt(r.latency_per_decision) + " ms";
  const flag = r.stalled ? ' <span class="status stalled"><span class="dot">' +
    "</span>stalled</span>" : "";
  return `<tr class="click" onclick="selectRun(${r.id})">
    <td class="num">${r.run_index}</td>
    <td>${esc(r.label || "seed " + r.seed)}</td>
    <td class="num">${lat}${flag}</td>
    <td class="num">${fmt(r.messages_per_decision)}</td>
    <td class="num">${fmt(r.events_processed, 0)}</td>
    <td>${healthCell(r)}</td>
    <td class="fp">${r.fingerprint ? esc(r.fingerprint.slice(0, 12)) : "–"}</td>
    <td>${r.trace_path ? "trace" : ""}</td>
  </tr>`;
}

async function renderDetail() {
  if (state.selected == null) return;
  const data = await api("/api/experiments/" + state.selected);
  let health = null;
  try { health = await api("/api/experiments/" + state.selected + "/health"); }
  catch (err) { /* health rollup is best-effort */ }
  const e = data.experiment;
  const others = state.experiments.filter(x => x.id !== e.id);
  const diffSel = others.length ? `<span class="controls">
      <label class="muted">diff against</label>
      <select id="diffsel">${others.map(o =>
        `<option value="${o.id}">#${o.id} ${esc(o.name)}</option>`).join("")}
      </select>
      <button onclick="showDiff()">diff fingerprints</button></span>` : "";
  const arts = (data.artifacts || []).map(a =>
    `<li>${esc(a.kind)} ${esc(a.name)} ${a.path ? esc(a.path) : ""}</li>`
  ).join("");
  $("#detail").innerHTML = `
    <div class="crumbs"><a onclick="deselect()">experiments</a> /
      #${e.id} ${esc(e.name)}</div>
    <div class="cards">
      <div class="card"><b>${statusCell(e.status)}</b><span>status</span></div>
      <div class="card"><b>${e.done_runs}/${e.total_runs}</b><span>runs done</span></div>
      <div class="card"><b>${e.failed_runs}</b><span>failed</span></div>
      <div class="card"><b>${e.stalled_runs}</b><span>stalled</span></div>
      <div class="card"><b>${esc(e.config.protocol || "?")}</b><span>protocol</span></div>
    </div>
    ${diffSel}
    <h2>Runs</h2>
    <table><thead><tr><th class="num">#</th><th>run</th>
      <th class="num">latency/decision</th><th class="num">msgs/dec</th>
      <th class="num">events</th><th>health</th><th>fingerprint</th>
      <th></th></tr></thead>
      <tbody>${data.runs.map(runRow).join("")}</tbody></table>
    ${healthView(health)}
    ${saturationView(data.runs)}
    <div id="runpanel"></div>`;
}

function anomalyRows(anomalies, withRun) {
  return (anomalies || []).slice(0, 40).map(a => {
    const who = [(a.nodes || []).length ? "n" + a.nodes.join(",") : "",
                 (a.clients || []).length ? "c" + a.clients.join(",") : ""]
      .filter(Boolean).join(" ") || "–";
    const sev = `<span class="status ${a.severity === "critical"
      ? "failed" : "stalled"}"><span class="dot"></span>${esc(a.severity)}</span>`;
    return `<tr><td class="num">${fmt(a.time, 0)} ms</td>` +
      (withRun ? `<td class="num">${a.run_index}</td>` : "") +
      `<td>${esc(a.detector)}</td><td>${sev}</td><td>${esc(who)}</td></tr>`;
  }).join("");
}

function healthView(h) {
  // Fleet health panel: live anomaly timeline merged across the
  // experiment's health-monitored runs.  Empty for unmonitored fleets.
  if (!h || !h.monitored_runs) return "";
  const dets = Object.entries(h.detectors || {}).map(([k, v]) =>
    `<span class="status"><span class="dot" style="background:var(--warn)">` +
    `</span>${esc(k)}: ${v}</span>`).join("");
  const rows = anomalyRows(h.anomalies, true);
  return `<h2>Run health <span class="muted">(streaming anomaly detectors
    across ${h.monitored_runs} monitored runs)</span></h2>
    <div class="cards">
      <div class="card"><b>${h.anomaly_total}</b><span>anomalies</span></div>
      <div class="card"><b>${h.min_fairness == null ? "–"
        : fmt(h.min_fairness, 2)}</b><span>min fairness</span></div>
    </div>
    ${dets ? `<div class="legend">${dets}</div>` : ""}
    ${rows ? `<table><thead><tr><th class="num">time</th>
      <th class="num">run</th><th>detector</th><th>severity</th>
      <th>implicated</th></tr></thead><tbody>${rows}</tbody></table>`
      : '<p class="muted">No anomalies detected.</p>'}`;
}

function saturationView(runs) {
  // Throughput/saturation view: one bar per workload run (committed tx/s
  // against the fleet maximum), with request counts, per-request latency
  // percentiles, and the saturation flag.  Empty for non-workload fleets.
  const wl = (runs || []).filter(r => r.committed_tx_s != null);
  if (!wl.length) return "";
  const tmax = Math.max(...wl.map(r => r.committed_tx_s)) || 1;
  const rows = wl.map(r => {
    const w = r.workload || {};
    const sat = r.saturated ? ' <span class="status stalled">' +
      '<span class="dot"></span>saturated</span>' : "";
    return `<tr class="click" onclick="selectRun(${r.id})">
      <td class="num">${r.run_index}</td>
      <td>${esc(r.label || "seed " + r.seed)}</td>
      <td style="min-width:200px"><div class="bar">
        <i style="width:${100 * r.committed_tx_s / tmax}%"></i></div></td>
      <td class="num">${fmt(r.committed_tx_s)}${sat}</td>
      <td class="num">${fmt(r.requests_decided, 0)}/${fmt(r.requests_submitted, 0)}</td>
      <td class="num">${fmt(w.latency_p50_ms, 0)} ms</td>
      <td class="num">${fmt(w.latency_p99_ms, 0)} ms</td>
      <td class="num">${fmt(w.max_queue_depth, 0)}</td>
    </tr>`;
  }).join("");
  return `<h2>Throughput / saturation <span class="muted">(committed tx/s
    per run; flagged runs could not drain the offered load)</span></h2>
    <table><thead><tr><th class="num">#</th><th>run</th><th>tx/s</th>
    <th class="num">committed</th><th class="num">requests</th>
    <th class="num">req p50</th><th class="num">req p99</th>
    <th class="num">queue max</th></tr></thead>
    <tbody>${rows}</tbody></table>`;
}

function phaseChart(phases) {
  if (!phases || !phases.per_view || !phases.per_view.length) return "";
  const names = [];
  for (const v of phases.per_view)
    for (const p of Object.keys(v.durations))
      if (!names.includes(p)) names.push(p);
  const slot = p => `var(${PHASE_SLOTS[names.indexOf(p) % 8]})`;
  const legend = `<div class="legend">${names.map(p =>
    `<span class="status"><span class="dot" style="background:${slot(p)}">` +
    `</span>${esc(p)}</span>`).join("")}</div>`;
  const rows = phases.per_view.slice(0, 40).map(v => {
    const total = Object.values(v.durations).reduce((a, b) => a + b, 0) || 1;
    const segs = Object.entries(v.durations).map(([p, ms]) =>
      `<i style="width:${100 * ms / total}%;background:${slot(p)}"
         title="${esc(p)}: ${fmt(ms)} ms"></i>`).join("");
    return `<tr><td class="num">${esc(JSON.stringify(v.view))}</td>
      <td class="num">${v.node}</td>
      <td style="min-width:240px"><div class="stack">${segs}</div></td>
      <td class="num">${fmt(total)} ms</td></tr>`;
  }).join("");
  return `<h2>Per-view phase breakdown</h2>${legend}
    <table><thead><tr><th class="num">view</th><th class="num">node</th>
    <th>time in phase</th><th class="num">view total</th></tr></thead>
    <tbody>${rows}</tbody></table>`;
}

function quorumChart(quorums) {
  if (!quorums || !quorums.length) return "";
  const tmax = Math.max(...quorums.map(q => q.closed_at || 0)) || 1;
  const rows = quorums.slice(0, 40).map(q => {
    const left = 100 * (q.first_arrival || 0) / tmax;
    const width = Math.max(0.8, 100 * ((q.closed_at || 0) -
      (q.first_arrival || 0)) / tmax);
    return `<tr><td class="num">${q.slot}</td><td class="num">${q.node}</td>
      <td style="min-width:260px"><div class="tl">
        <span class="span" style="left:${left}%;width:${width}%"></span>
        <span class="mark" style="left:${Math.min(99, left + width)}%"
          title="quorum closed at ${fmt(q.closed_at)} ms"></span>
      </div></td>
      <td class="num">${fmt(q.closed_at)} ms</td>
      <td class="num">${q.straggler == null ? "–" : q.straggler}</td>
      <td class="num">${q.wasted == null ? "–" : q.wasted}</td></tr>`;
  }).join("");
  return `<h2>Quorum timelines <span class="muted">(bar: first vote →
    quorum close; straggler & wasted post-quorum arrivals per decision)
    </span></h2>
    <table><thead><tr><th class="num">slot</th><th class="num">node</th>
    <th>timeline</th><th class="num">closed</th>
    <th class="num">straggler</th><th class="num">wasted</th></tr></thead>
    <tbody>${rows}</tbody></table>`;
}

function criticalPaths(paths) {
  if (!paths || !paths.length) return "";
  const rows = paths.slice(0, 20).map(p =>
    `<tr><td class="num">${p.slot}</td><td class="num">${p.node}</td>
     <td class="num">${p.hops}</td><td class="num">${fmt(p.duration)} ms</td>
     <td class="muted">${esc((p.steps || []).map(s => s.label).join(" → "))}
     </td></tr>`).join("");
  return `<h2>Critical paths</h2>
    <table><thead><tr><th class="num">slot</th><th class="num">node</th>
    <th class="num">hops</th><th class="num">duration</th><th>chain</th>
    </tr></thead><tbody>${rows}</tbody></table>`;
}

async function selectRun(runId) {
  state.run = runId;
  const data = await api("/api/runs/" + runId);
  const r = data.run;
  let html = `<h2>Run #${r.run_index}
    <span class="muted">(store id ${r.id}, seed ${r.seed})</span></h2>
    <div class="cards">
      <div class="card"><b>${fmt(r.latency_per_decision)} ms</b>
        <span>latency/decision</span></div>
      <div class="card"><b>${fmt(r.messages, 0)}</b><span>messages</span></div>
      <div class="card"><b>${fmt(r.events_processed, 0)}</b>
        <span>events</span></div>
      <div class="card"><b>${r.max_view == null ? "–" : r.max_view}</b>
        <span>max view</span></div>
    </div>`;
  if (r.workload) {
    const w = r.workload;
    html += `<h2>Workload</h2><div class="cards">
      <div class="card"><b>${fmt(w.committed_tx_s)}</b>
        <span>committed tx/s</span></div>
      <div class="card"><b>${fmt(w.decided, 0)}/${fmt(w.submitted, 0)}</b>
        <span>requests decided</span></div>
      <div class="card"><b>${fmt(w.latency_p50_ms, 0)} ms</b>
        <span>request p50</span></div>
      <div class="card"><b>${fmt(w.latency_p99_ms, 0)} ms</b>
        <span>request p99</span></div>
      <div class="card"><b>${fmt(w.max_queue_depth, 0)}</b>
        <span>queue max</span></div>
      <div class="card"><b>${w.saturated ? "yes" : "no"}</b>
        <span>saturated</span></div>
    </div>`;
  }
  if (r.health) {
    const h = r.health;
    const rows = anomalyRows(h.events, false);
    html += `<h2>Health <span class="muted">(${fmt(h.window_ms, 0)} ms
      detector windows)</span></h2>
      <div class="cards">
        <div class="card"><b>${h.anomaly_count}</b><span>anomalies</span></div>
        <div class="card"><b>${h.windows}</b><span>windows</span></div>
        <div class="card"><b>${h.min_fairness == null ? "–"
          : fmt(h.min_fairness, 2)}</b><span>min fairness</span></div>
      </div>` +
      (rows ? `<table><thead><tr><th class="num">time</th><th>detector</th>
        <th>severity</th><th>implicated</th></tr></thead>
        <tbody>${rows}</tbody></table>` : "");
  }
  if (r.failure) html += `<pre>${esc(JSON.stringify(r.failure, null, 1))}</pre>`;
  if (r.stall) html += `<p class="status stalled"><span class="dot"></span>
    stalled: ${esc(r.stall.reason)} at ${fmt(r.stall.detected_at)} ms</p>`;
  if (r.signals && r.signals.phase_timings &&
      Object.keys(r.signals.phase_timings).length) {
    const entries = Object.entries(r.signals.phase_timings).slice(0, 24);
    html += `<h2>Live signals: per-view phase totals</h2>
      <table><thead><tr><th>view/phase</th><th class="num">total</th>
      <th class="num">entries</th></tr></thead><tbody>` +
      entries.map(([k, v]) => `<tr><td>${esc(k)}</td>
        <td class="num">${fmt(v.total_ms)} ms</td>
        <td class="num">${v.entries}</td></tr>`).join("") +
      "</tbody></table>";
  }
  if (r.trace_path) {
    html += `<p class="muted">trace: ${esc(r.trace_path)}</p>`;
    try {
      const analysis = await api("/api/runs/" + runId + "/analysis");
      if (analysis.available) {
        html += quorumChart(analysis.quorums);
        html += phaseChart(analysis.phases);
        html += criticalPaths(analysis.critical_paths);
      } else {
        html += `<p class="muted">analysis unavailable:
          ${esc(analysis.reason || "?")}</p>`;
      }
    } catch (err) {
      html += `<p class="muted">analysis failed: ${esc(err.message)}</p>`;
    }
  } else {
    html += `<p class="muted">No trace recorded for this run
      (re-run with --trace-out to enable drill-down).</p>`;
  }
  $("#runpanel").innerHTML = html;
}

async function showDiff() {
  const other = $("#diffsel").value;
  const d = await api(`/api/experiments/${state.selected}/diff/${other}`);
  const rows = d.rows.map(row => `<tr>
    <td class="num">${row.run_index}</td>
    <td class="fp ${row.match ? "ok-fp" : "bad-fp"}">
      ${row.a ? esc(row.a.slice(0, 16)) : "missing"}</td>
    <td class="fp ${row.match ? "ok-fp" : "bad-fp"}">
      ${row.b ? esc(row.b.slice(0, 16)) : "missing"}</td>
    <td>${row.match ? "match" : "DIFFERS"}</td>
    <td class="num">${fmt(row.a_latency)}</td>
    <td class="num">${fmt(row.b_latency)}</td></tr>`).join("");
  $("#runpanel").innerHTML = `
    <h2>Fingerprint diff: #${d.a.id} vs #${d.b.id}
      <span class="muted">${d.identical ? "identical" : "differs"}</span></h2>
    <table><thead><tr><th class="num">#</th><th>${esc(d.a.name)}</th>
    <th>${esc(d.b.name)}</th><th></th>
    <th class="num">lat A</th><th class="num">lat B</th></tr></thead>
    <tbody>${rows}</tbody></table>`;
}

function selectExperiment(id) {
  state.selected = id; state.run = null;
  renderList(); renderDetail().catch(console.error);
}
function deselect() {
  state.selected = null;
  $("#detail").innerHTML = '<p class="muted">Select an experiment.</p>';
  renderList();
}

async function refresh() {
  const data = await api("/api/experiments");
  state.experiments = data.experiments;
  const meta = await api("/api/meta");
  $("#meta").textContent = `${meta.store} · schema v${meta.schema_version} · ` +
    `${data.experiments.length} experiments`;
  renderList();
  const anyRunning = data.experiments.some(e => e.status === "running");
  $("#poll").textContent = anyRunning ? "· polling (fleet in flight)" : "";
  if (state.selected != null && state.run == null) await renderDetail();
  return anyRunning;
}

async function loop() {
  let running = false;
  try { running = await refresh(); }
  catch (err) { $("#meta").textContent = "store unreachable: " + err.message; }
  setTimeout(loop, running ? 2000 : 5000);
}
loop();
</script>
</body>
</html>
"""
