"""The ``repro serve`` live dashboard (stdlib-only HTTP + embedded page)."""

from .server import DashboardHandler, create_server, run_analysis, serve

__all__ = [
    "DashboardHandler",
    "create_server",
    "run_analysis",
    "serve",
]
