"""The process-pool experiment engine.

The paper's evaluation repeats every experiment 100 times per configuration
and sweeps node counts, delay distributions, and attacks (§IV) — a workload
that is embarrassingly parallel because every run is a deterministic
function of its configuration (including the seed).  :class:`ParallelRunner`
fans independent runs across worker processes while preserving exactly the
results a serial execution would produce:

* **Deterministic ordering** — results come back in task (seed / variation)
  order regardless of which worker finishes first.
* **Deterministic content** — workers execute :func:`repro.core.runner.
  run_simulation` on pickled configurations, so every deterministic field of
  a :class:`~repro.core.results.SimulationResult` is identical to a serial
  run's (only ``wall_clock_seconds``, which measures host time, differs).
* **Fault isolation** — a run that raises inside the simulation yields a
  structured :class:`~repro.core.results.RunFailure` for its slot; a worker
  process that crashes (killed, segfault) or hangs past the per-run timeout
  is replaced with a fresh worker and the run is retried up to ``retries``
  times before being marked failed.  Other runs are never affected: no
  pool-wide exception, no lost batch.
* **Observability** — an optional progress callback receives a
  :class:`ProgressUpdate` (runs completed / failed / elapsed wall time /
  accumulated simulated time) after every terminal run, so long sweeps can
  render live status.

Failure semantics in detail:

* An exception raised by the simulation itself (``SafetyViolationError``,
  ``LivenessTimeoutError``, a protocol bug...) is **not retried** — runs are
  deterministic, so the retry would fail identically.  It becomes a
  ``RunFailure(kind="error")`` immediately, carrying the exception type,
  message, and traceback text.
* A worker that dies without replying (``kind="crash"``) or exceeds the
  per-run wall-clock ``timeout`` (``kind="timeout"``) *is* retried — those
  failures come from the host (OOM killer, resource exhaustion), not from
  the deterministic simulation.  Each retry runs on a freshly spawned
  worker; after ``retries`` additional attempts the run is marked failed.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection, get_all_start_methods, get_context
from typing import Callable, Iterable, Sequence

from ..core.config import SimulationConfig
from ..core.results import RunFailure, SimulationResult

#: Seconds the dispatch loop waits for worker replies before re-checking
#: deadlines; bounds timeout-detection latency without busy-waiting.
_POLL_SECONDS = 0.05

#: Seconds to wait for a worker to exit cleanly before escalating to kill.
_JOIN_SECONDS = 1.0


def default_jobs() -> int:
    """The engine's default degree of parallelism: one worker per CPU."""
    return os.cpu_count() or 1


def _start_method() -> str:
    """Prefer ``fork`` (cheap, inherits registered protocols) when available."""
    return "fork" if "fork" in get_all_start_methods() else "spawn"


def _worker_main(conn: connection.Connection) -> None:
    """Worker-process loop: receive configs, run them, reply with results.

    Tasks arrive as ``(task_index, config, profile_flag, metrics_option,
    health_option)``;
    replies are ``(task_index, "ok", SimulationResult)`` or
    ``(task_index, "error", exc_type_name, message, traceback_text)``.  A
    ``None`` task is the shutdown sentinel.
    """
    # Imported here so the module import stays cheap under ``spawn``.
    from ..core.runner import run_simulation

    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if item is None:
            return
        index, config, profile, metrics, health = item
        try:
            reply = (
                index, "ok",
                run_simulation(
                    config, profile=profile, metrics=metrics, health=health
                ),
            )
        except KeyboardInterrupt:
            return
        except BaseException as exc:  # deliberate: report, don't die
            reply = (index, "error", type(exc).__name__, str(exc),
                     traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
        except Exception as exc:  # unpicklable result — report instead
            conn.send((index, "error", type(exc).__name__,
                       f"result could not be pickled: {exc}", ""))


@dataclass(frozen=True)
class ProgressUpdate:
    """Snapshot handed to the progress callback after each terminal run.

    Attributes:
        total: number of runs in the batch.
        completed: runs finished successfully so far.
        failed: runs that ended as :class:`RunFailure` so far.
        elapsed_seconds: wall-clock time since the batch started.
        sim_time_ms: accumulated *simulated* time (sum of per-run latency)
            across completed runs — how much protocol time the batch has
            already explored.
        stalled: completed runs the liveness watchdog stopped with a
            :class:`~repro.core.results.StallReport` (they count as
            completed, not failed — a diagnosed stall is a result).
    """

    total: int
    completed: int
    failed: int
    elapsed_seconds: float
    sim_time_ms: float
    stalled: int = 0

    @property
    def done(self) -> int:
        """Runs with a terminal outcome (completed + failed)."""
        return self.completed + self.failed

    def summary(self) -> str:
        """One-line status, e.g. ``"37/100 done (2 failed) 12.3s wall, 84000ms sim"``."""
        failed = f" ({self.failed} failed)" if self.failed else ""
        stalled = f" ({self.stalled} stalled)" if self.stalled else ""
        return (
            f"{self.done}/{self.total} done{failed}{stalled} "
            f"{self.elapsed_seconds:.1f}s wall, {self.sim_time_ms:.0f}ms sim"
        )


class _Task:
    """One run: its slot in the output list, its config, attempts so far."""

    __slots__ = ("index", "config", "attempts")

    def __init__(self, index: int, config: SimulationConfig) -> None:
        self.index = index
        self.config = config
        self.attempts = 0


class _Worker:
    """A worker process plus the duplex pipe the parent drives it through."""

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()  # parent keeps only its end
        self.task: _Task | None = None
        self.deadline: float | None = None

    def assign(
        self,
        task: _Task,
        timeout: float | None,
        profile: bool = False,
        metrics: bool | float = False,
        health: bool | float = False,
    ) -> None:
        self.task = task
        self.deadline = (time.monotonic() + timeout) if timeout else None
        self.conn.send((task.index, task.config, profile, metrics, health))

    def timed_out(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline

    def shutdown(self) -> None:
        """Best-effort clean exit, escalating to terminate/kill."""
        try:
            if self.process.is_alive() and self.task is None:
                self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(_JOIN_SECONDS)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(_JOIN_SECONDS)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(_JOIN_SECONDS)
        self.conn.close()

    def kill(self) -> None:
        """Hard-stop a crashed or hung worker."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(_JOIN_SECONDS)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join(_JOIN_SECONDS)
        self.conn.close()


class ParallelRunner:
    """Fans independent simulation runs across a pool of worker processes.

    Args:
        jobs: worker processes; ``None`` means one per CPU
            (:func:`default_jobs`).
        timeout: wall-clock seconds allowed per run attempt; ``None``
            disables the deadline.
        retries: additional attempts granted to a run whose worker crashed
            or hung (deterministic simulation errors are never retried).
        progress: optional callback receiving a :class:`ProgressUpdate`
            after every terminal run.
        profile: profile every run's hot path; each result carries a
            :class:`~repro.observability.profiler.RunProfile` and the
            runner exposes the merged fleet view as :attr:`fleet_profile`
            after each batch.
        metrics: sample engine metrics in every run (``True`` for the
            default interval, a float for a custom interval in simulated
            milliseconds); each result carries a
            :class:`~repro.observability.metrics.RunMetrics` and the runner
            exposes the merged fleet view as :attr:`fleet_metrics` after
            each batch.
        health: run the streaming anomaly detectors in every run (``True``
            for the default window, a float for a custom window in
            simulated milliseconds); each result carries a
            :class:`~repro.observability.health.HealthReport`.
        recorder: optional run recorder ``recorder(task_index, entry)``
            (e.g. a :class:`repro.store.StoreRecorder`), invoked in the
            parent process the moment a run reaches a terminal outcome —
            completion order, not task order — so a persistent store's
            progress rows update live while the fleet is still in flight.

    The three entry points (:meth:`map`, :meth:`run_repeat`,
    :meth:`run_sweep`) all return results in deterministic task order; a
    failed run occupies its slot as a :class:`RunFailure` instead of
    aborting the batch.
    """

    def __init__(
        self,
        jobs: int | None = None,
        timeout: float | None = None,
        retries: int = 1,
        progress: Callable[[ProgressUpdate], None] | None = None,
        profile: bool = False,
        metrics: bool | float = False,
        health: bool | float = False,
        recorder: Callable[[int, SimulationResult | RunFailure], None] | None = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs if jobs is not None else default_jobs()
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.profile = profile
        self.metrics = metrics
        self.health = health
        self.recorder = recorder
        #: Merged :class:`~repro.observability.profiler.RunProfile` of the
        #: most recent batch (``None`` until a profiled batch completes).
        self.fleet_profile = None
        #: Merged :class:`~repro.observability.metrics.RunMetrics` of the
        #: most recent batch (``None`` until a metered batch completes).
        self.fleet_metrics = None
        self._ctx = get_context(_start_method())

    # -- entry points --------------------------------------------------------

    def map(
        self, configs: Iterable[SimulationConfig]
    ) -> list[SimulationResult | RunFailure]:
        """Run every configuration; results in input order."""
        configs = list(configs)
        if not configs:
            return []
        return self._execute([_Task(i, c) for i, c in enumerate(configs)])

    def run_repeat(
        self,
        config: SimulationConfig,
        repetitions: int,
        seed_offset: int = 0,
    ) -> list[SimulationResult | RunFailure]:
        """Parallel counterpart of :func:`repro.core.runner.repeat_simulation`.

        Same seed-window contract: run ``i`` uses seed
        ``config.seed + seed_offset + i``.
        """
        from ..core.runner import seed_window

        return self.map(seed_window(config, repetitions, seed_offset))

    def run_sweep(
        self,
        base: SimulationConfig,
        variations: Iterable[dict],
        repetitions: int = 1,
    ) -> list[list[SimulationResult | RunFailure]]:
        """Parallel counterpart of :func:`repro.core.runner.sweep`.

        The whole ``variations x repetitions`` grid is flattened into one
        batch so workers stay saturated across variation boundaries, then
        regrouped into one result list per variation.
        """
        from ..core.runner import seed_window

        variations = list(variations)
        flat: list[SimulationConfig] = []
        for variation in variations:
            flat.extend(seed_window(base.replace(**variation), repetitions))
        results = self.map(flat)
        return [
            results[i * repetitions : (i + 1) * repetitions]
            for i in range(len(variations))
        ]

    # -- engine --------------------------------------------------------------

    def _execute(
        self, tasks: Sequence[_Task]
    ) -> list[SimulationResult | RunFailure]:
        total = len(tasks)
        queue: deque[_Task] = deque(tasks)
        out: dict[int, SimulationResult | RunFailure] = {}
        started = time.monotonic()
        completed = failed = stalled = 0
        sim_time_ms = 0.0
        workers = [_Worker(self._ctx) for _ in range(min(self.jobs, total))]

        def record(index: int, value: SimulationResult | RunFailure) -> None:
            nonlocal completed, failed, sim_time_ms, stalled
            out[index] = value
            if isinstance(value, RunFailure):
                failed += 1
            else:
                completed += 1
                sim_time_ms += value.latency
                if value.stalled:
                    stalled += 1
            if self.recorder is not None:
                self.recorder(index, value)
            if self.progress is not None:
                self.progress(
                    ProgressUpdate(
                        total=total,
                        completed=completed,
                        failed=failed,
                        elapsed_seconds=time.monotonic() - started,
                        sim_time_ms=sim_time_ms,
                        stalled=stalled,
                    )
                )

        def fail_or_retry(worker: _Worker, kind: str, message: str) -> None:
            """Handle a crashed or hung worker: replace it, retry or fail."""
            task = worker.task
            worker.task = None
            worker.kill()
            workers[workers.index(worker)] = _Worker(self._ctx)
            assert task is not None
            task.attempts += 1
            if task.attempts <= self.retries:
                queue.appendleft(task)
            else:
                record(
                    task.index,
                    RunFailure(
                        config=task.config,
                        kind=kind,
                        error_type=kind,
                        message=message,
                        run_index=task.index,
                        attempts=task.attempts,
                    ),
                )

        try:
            while len(out) < total:
                for worker in workers:
                    if worker.task is None and queue:
                        worker.assign(
                            queue.popleft(), self.timeout, self.profile,
                            self.metrics, self.health,
                        )
                busy = {w.conn: w for w in workers if w.task is not None}
                if not busy:  # pragma: no cover - defensive
                    break
                ready = connection.wait(list(busy), timeout=_POLL_SECONDS)
                for conn in ready:
                    worker = busy[conn]
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError):
                        fail_or_retry(
                            worker, "crash",
                            "worker process died without reporting a result",
                        )
                        continue
                    task = worker.task
                    worker.task = None
                    worker.deadline = None
                    assert task is not None
                    index, status, *payload = reply
                    assert index == task.index, "worker replied out of turn"
                    if status == "ok":
                        record(task.index, payload[0])
                    else:
                        error_type, message, tb = payload
                        record(
                            task.index,
                            RunFailure(
                                config=task.config,
                                kind="error",
                                error_type=error_type,
                                message=message,
                                run_index=task.index,
                                attempts=task.attempts + 1,
                                traceback=tb,
                            ),
                        )
                now = time.monotonic()
                for worker in list(workers):
                    if worker.task is not None and worker.timed_out(now):
                        seconds = self.timeout
                        fail_or_retry(
                            worker, "timeout",
                            f"run exceeded the per-run timeout of {seconds}s",
                        )
        finally:
            for worker in workers:
                worker.shutdown()
        results = [out[i] for i in range(total)]
        profiles = [
            entry.profile
            for entry in results
            if isinstance(entry, SimulationResult) and entry.profile is not None
        ]
        if profiles:
            from ..observability.profiler import RunProfile

            self.fleet_profile = RunProfile.merge(profiles)
        metrics = [
            entry.run_metrics
            for entry in results
            if isinstance(entry, SimulationResult) and entry.run_metrics is not None
        ]
        if metrics:
            from ..observability.metrics import RunMetrics

            self.fleet_metrics = RunMetrics.merge(metrics)
        return results
