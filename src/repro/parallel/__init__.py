"""Parallel experiment execution.

The engine behind ``repeat_simulation(..., jobs=N)`` and
``sweep(..., jobs=N)``: a process pool that fans deterministic simulation
runs across CPU cores, returns results in seed/variation order, and
degrades gracefully (per-run timeout, crash retry, structured
:class:`~repro.core.results.RunFailure` records).  See
:mod:`repro.parallel.engine` for the full semantics.
"""

from .engine import ParallelRunner, ProgressUpdate, default_jobs

__all__ = ["ParallelRunner", "ProgressUpdate", "default_jobs"]
