"""The experiment harness behind the paper-reproduction benchmarks.

Encodes the paper's §IV methodology in one place so every figure bench uses
identical conventions:

* ``n = 16`` nodes by default;
* pipelined protocols (HotStuff+NS, LibraBFT) are measured over **ten**
  decisions, all others over one;
* every cell is repeated under consecutive seeds and summarized as
  mean ± std (the paper uses 100 repetitions; the default here is
  ``REPRO_BENCH_REPS`` = 5 to keep bench runtime sane — export
  ``REPRO_BENCH_REPS=100`` for paper-scale statistics);
* **synchronous protocols run on a synchronous network**: the paper's
  network model for them bounds every delay by ``b <= lambda``
  (§III-A4), so the harness caps sampled delays at ``0.99 * lambda`` for
  protocols declaring the synchronous model.  Partially-synchronous and
  asynchronous protocols get the raw (unbounded) distribution — that is
  precisely what Figs. 5 and 7 stress.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from ..core.config import AttackConfig, NetworkConfig, SimulationConfig
from ..core.results import SimulationResult
from ..core.runner import repeat_simulation
from ..protocols.base import SYNCHRONOUS
from ..protocols.registry import get_protocol
from .aggregate import RunSummary, summarize

#: The paper's default cluster size (§IV).
DEFAULT_N: int = 16

#: Decisions measured for pipelined protocols (§IV).
PIPELINED_DECISIONS: int = 10

#: Fraction of ``lambda`` used as the synchronous network's delay bound
#: ``b`` (strictly below ``lambda`` so boundary deliveries are unambiguous).
SYNC_BOUND_FRACTION: float = 0.99


def bench_repetitions(default: int = 5) -> int:
    """Per-cell repetitions, configurable via ``REPRO_BENCH_REPS``."""
    return max(1, int(os.environ.get("REPRO_BENCH_REPS", default)))


def bench_jobs(default: int = 1) -> int:
    """Worker processes per cell, configurable via ``REPRO_BENCH_JOBS``.

    Defaults to 1 (serial) so bench timings stay comparable run-to-run;
    export ``REPRO_BENCH_JOBS=$(nproc)`` to fan paper-scale repetition
    counts across cores.  ``REPRO_BENCH_JOBS=0`` means one worker per CPU.
    Because runs are deterministic, the reported statistics are identical
    either way — only wall-clock time changes.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", default))
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def decisions_for(protocol: str) -> int:
    """The paper's measurement depth for ``protocol``."""
    return PIPELINED_DECISIONS if get_protocol(protocol).pipelined else 1


def network_for(
    protocol: str,
    mean: float,
    std: float,
    lam: float,
    max_delay: float | None = None,
) -> NetworkConfig:
    """A network configuration honouring the per-model bounding policy."""
    if max_delay is None and get_protocol(protocol).network_model == SYNCHRONOUS:
        max_delay = SYNC_BOUND_FRACTION * lam
    return NetworkConfig(mean=mean, std=std, max_delay=max_delay)


@dataclass
class ExperimentCell:
    """One (protocol, parameters) cell of a figure.

    Attributes:
        protocol: registry name.
        lam: timeout parameter (ms).
        mean/std: delay distribution parameters (ms).
        attack: optional attack scenario.
        n: cluster size.
        num_decisions: decisions to measure (``None``: paper convention).
        max_time: horizon (ms); runs hitting it count as non-terminating.
        protocol_params: forwarded verbatim.
    """

    protocol: str
    lam: float = 1000.0
    mean: float = 250.0
    std: float = 50.0
    attack: AttackConfig = field(default_factory=AttackConfig)
    n: int = DEFAULT_N
    num_decisions: int | None = None
    max_time: float = 3_600_000.0
    seed: int = 0
    protocol_params: dict[str, Any] = field(default_factory=dict)

    def config(self) -> SimulationConfig:
        decisions = (
            self.num_decisions
            if self.num_decisions is not None
            else decisions_for(self.protocol)
        )
        return SimulationConfig(
            protocol=self.protocol,
            n=self.n,
            lam=self.lam,
            network=network_for(self.protocol, self.mean, self.std, self.lam),
            attack=self.attack,
            num_decisions=decisions,
            seed=self.seed,
            max_time=self.max_time,
            allow_horizon=True,
            protocol_params=dict(self.protocol_params),
        )


def run_cell(cell: ExperimentCell, repetitions: int | None = None) -> RunSummary:
    """Run one cell ``repetitions`` times and aggregate."""
    reps = repetitions if repetitions is not None else bench_repetitions()
    return summarize(run_cell_raw(cell, reps))


def run_cell_raw(cell: ExperimentCell, repetitions: int) -> list[SimulationResult]:
    """The individual results behind :func:`run_cell` (for custom metrics).

    Honours ``REPRO_BENCH_JOBS`` (see :func:`bench_jobs`): every figure
    bench that goes through the cell harness gains multi-core sweeps for
    free, with results identical to the serial ones.
    """
    return repeat_simulation(cell.config(), repetitions, jobs=bench_jobs())
