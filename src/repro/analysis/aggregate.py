"""Aggregation of repeated simulation runs.

The paper reports the mean and standard deviation of each metric over 100
repetitions (§IV); this module computes those summaries from
:class:`~repro.core.results.SimulationResult` lists.

Batches produced by the parallel engine (or ``on_error="record"``) may
contain :class:`~repro.core.results.RunFailure` entries alongside results;
:func:`summarize` aggregates over the successful runs and reports the
failure count explicitly instead of silently dropping or crashing on them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.results import RunFailure, SimulationResult


@dataclass(frozen=True)
class SummaryStats:
    """Mean / standard deviation / extrema of one metric across runs."""

    mean: float
    std: float
    min: float
    max: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "SummaryStats":
        if not values:
            raise ValueError("cannot summarize zero values")
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            min=min(values),
            max=max(values),
            count=len(values),
        )

    def format(self, scale: float = 1.0, unit: str = "") -> str:
        """``"mean +- std unit"`` with the given scaling (e.g. 1/1000 for
        seconds)."""
        return f"{self.mean * scale:.2f} +- {self.std * scale:.2f}{unit}"


@dataclass(frozen=True)
class RunSummary:
    """Aggregated metrics of one experimental cell.

    Attributes:
        latency: total time usage (ms) across runs.
        latency_per_decision: per-decision time usage (ms).
        messages: honest message usage across runs.
        messages_per_decision: per-decision message usage.
        terminated_fraction: fraction of runs that terminated before the
            horizon (1.0 in healthy regimes; below 1.0 flags a liveness
            pathology, reported explicitly rather than hidden).
        failures: number of :class:`~repro.core.results.RunFailure` entries
            excluded from the statistics (0 for fully-successful batches).
        stalled_fraction: fraction of runs the liveness watchdog stopped
            with a :class:`~repro.core.results.StallReport` (0.0 when the
            watchdog is disabled or never fired).
        fault_events: mean number of environmental fault events per run
            (``FaultCounts.total()``; 0.0 for fault-free runs).
        throughput: committed tx/s across workload runs, or ``None`` when
            no successful run carried workload metrics (the pre-workload
            summary shape is unchanged).
        request_latency_p50 / request_latency_p99: per-request latency
            percentiles (ms) across workload runs, or ``None`` likewise.
        saturated_fraction: fraction of workload runs that ended with
            undecided requests (offered load above the protocol's
            capacity) — the saturation axis of a throughput-latency curve.
        anomaly_total: total streaming-health anomalies across runs that
            carried a :class:`~repro.observability.health.HealthReport`
            (0 when health monitoring was off).
        min_fairness / mean_fairness: extremum and mean of the per-run
            minimum Jain fairness index across health-monitored workload
            runs, or ``None`` when no run recorded a fairness series.
        starved_clients: count of distinct (run, client) starvation
            implications across health-monitored runs.
    """

    latency: SummaryStats
    latency_per_decision: SummaryStats
    messages: SummaryStats
    messages_per_decision: SummaryStats
    terminated_fraction: float
    failures: int = 0
    stalled_fraction: float = 0.0
    fault_events: float = 0.0
    throughput: SummaryStats | None = None
    request_latency_p50: SummaryStats | None = None
    request_latency_p99: SummaryStats | None = None
    saturated_fraction: float = 0.0
    anomaly_total: int = 0
    min_fairness: float | None = None
    mean_fairness: float | None = None
    starved_clients: int = 0


def partition_results(
    entries: Iterable[SimulationResult | RunFailure],
) -> tuple[list[SimulationResult], list[RunFailure]]:
    """Split a mixed batch into (successful results, failure records)."""
    results: list[SimulationResult] = []
    failures: list[RunFailure] = []
    for entry in entries:
        (failures if isinstance(entry, RunFailure) else results).append(entry)
    return results, failures


def summarize(entries: Iterable[SimulationResult | RunFailure]) -> RunSummary:
    """Aggregate a batch into a :class:`RunSummary`.

    ``RunFailure`` entries are excluded from every statistic and surfaced
    via :attr:`RunSummary.failures`; a batch with no successful run at all
    cannot be summarized and raises ``ValueError``.
    """
    results, failures = partition_results(entries)
    if not results and failures:
        raise ValueError(f"cannot summarize: all {len(failures)} runs failed")
    if not results:
        raise ValueError("cannot summarize zero results")
    # Workload (throughput) statistics exist only for runs that carried an
    # open-loop client workload; mixed batches aggregate over that subset.
    workload = [r.workload for r in results if r.workload is not None]
    # Health statistics likewise aggregate over the health-monitored subset.
    health = [r.health for r in results if r.health is not None]
    fairness = [h.min_fairness for h in health if h.min_fairness is not None]
    return RunSummary(
        latency=SummaryStats.of([r.latency for r in results]),
        latency_per_decision=SummaryStats.of([r.latency_per_decision for r in results]),
        messages=SummaryStats.of([float(r.messages) for r in results]),
        messages_per_decision=SummaryStats.of([r.messages_per_decision for r in results]),
        terminated_fraction=sum(r.terminated for r in results) / len(results),
        failures=len(failures),
        stalled_fraction=sum(r.stalled for r in results) / len(results),
        fault_events=sum(r.fault_counts.total() for r in results) / len(results),
        throughput=(
            SummaryStats.of([w.committed_tx_s for w in workload]) if workload else None
        ),
        request_latency_p50=(
            SummaryStats.of([w.latency_p50_ms for w in workload]) if workload else None
        ),
        request_latency_p99=(
            SummaryStats.of([w.latency_p99_ms for w in workload]) if workload else None
        ),
        saturated_fraction=(
            sum(w.saturated for w in workload) / len(workload) if workload else 0.0
        ),
        anomaly_total=sum(h.anomaly_count for h in health),
        min_fairness=min(fairness) if fairness else None,
        mean_fairness=sum(fairness) / len(fairness) if fairness else None,
        starved_clients=sum(len(h.starved_clients) for h in health),
    )


def summarize_metric(
    entries: Iterable[SimulationResult | RunFailure],
    metric: Callable[[SimulationResult], float],
) -> SummaryStats:
    """Aggregate an arbitrary per-run metric (failures excluded)."""
    results, _failures = partition_results(entries)
    return SummaryStats.of([metric(r) for r in results])
