"""Aggregation of repeated simulation runs.

The paper reports the mean and standard deviation of each metric over 100
repetitions (§IV); this module computes those summaries from
:class:`~repro.core.results.SimulationResult` lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.results import SimulationResult


@dataclass(frozen=True)
class SummaryStats:
    """Mean / standard deviation / extrema of one metric across runs."""

    mean: float
    std: float
    min: float
    max: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "SummaryStats":
        if not values:
            raise ValueError("cannot summarize zero values")
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            min=min(values),
            max=max(values),
            count=len(values),
        )

    def format(self, scale: float = 1.0, unit: str = "") -> str:
        """``"mean +- std unit"`` with the given scaling (e.g. 1/1000 for
        seconds)."""
        return f"{self.mean * scale:.2f} +- {self.std * scale:.2f}{unit}"


@dataclass(frozen=True)
class RunSummary:
    """Aggregated metrics of one experimental cell.

    Attributes:
        latency: total time usage (ms) across runs.
        latency_per_decision: per-decision time usage (ms).
        messages: honest message usage across runs.
        messages_per_decision: per-decision message usage.
        terminated_fraction: fraction of runs that terminated before the
            horizon (1.0 in healthy regimes; below 1.0 flags a liveness
            pathology, reported explicitly rather than hidden).
    """

    latency: SummaryStats
    latency_per_decision: SummaryStats
    messages: SummaryStats
    messages_per_decision: SummaryStats
    terminated_fraction: float


def summarize(results: Iterable[SimulationResult]) -> RunSummary:
    """Aggregate a list of results into a :class:`RunSummary`."""
    results = list(results)
    if not results:
        raise ValueError("cannot summarize zero results")
    return RunSummary(
        latency=SummaryStats.of([r.latency for r in results]),
        latency_per_decision=SummaryStats.of([r.latency_per_decision for r in results]),
        messages=SummaryStats.of([float(r.messages) for r in results]),
        messages_per_decision=SummaryStats.of([r.messages_per_decision for r in results]),
        terminated_fraction=sum(r.terminated for r in results) / len(results),
    )


def summarize_metric(
    results: Iterable[SimulationResult],
    metric: Callable[[SimulationResult], float],
) -> SummaryStats:
    """Aggregate an arbitrary per-run metric."""
    return SummaryStats.of([metric(r) for r in results])
