"""View-synchronization analysis (the paper's Fig. 9 and §IV-D).

Extracts each node's view-over-time timeline from a recorded trace,
quantifies desynchronization (how many distinct views coexist, for how
long), and renders an ASCII timeline — the textual equivalent of Fig. 9's
per-node view chart, where "each color represents a view number".
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..core.tracing import Trace

#: Glyphs used to render view numbers (view mod len).
_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


@dataclass(frozen=True)
class ViewTimeline:
    """One node's view history: step function over time.

    Attributes:
        node: node id.
        times: times (ms) at which the node entered a new view, ascending.
        views: the view entered at each time.
    """

    node: int
    times: tuple[float, ...]
    views: tuple[int, ...]

    def view_at(self, time: float) -> int:
        """The node's view at ``time`` (0 before the first entry)."""
        index = bisect.bisect_right(self.times, time) - 1
        return self.views[index] if index >= 0 else 0


def extract_view_timelines(trace: Trace, n: int) -> list[ViewTimeline]:
    """Per-node view timelines from a trace's ``view`` report events."""
    entries: dict[int, list[tuple[float, int]]] = {node: [] for node in range(n)}
    for event in trace.events(kind="view"):
        if 0 <= event.node < n and "view" in event.fields:
            entries[event.node].append((event.time, int(event.fields["view"])))
    timelines = []
    for node in range(n):
        entries[node].sort()
        times = tuple(t for t, _ in entries[node])
        views = tuple(v for _, v in entries[node])
        timelines.append(ViewTimeline(node=node, times=times, views=views))
    return timelines


@dataclass(frozen=True)
class DesyncStats:
    """How badly views diverged during a run.

    Attributes:
        max_groups: the largest number of distinct views held simultaneously.
        desync_time: total time (ms) during which nodes held more than one
            distinct view.
        longest_desync: the longest contiguous such interval (ms) — the
            length of Fig. 9's plateau.
        horizon: total observed time (ms).
    """

    max_groups: int
    desync_time: float
    longest_desync: float
    horizon: float


def desync_statistics(
    timelines: list[ViewTimeline], horizon: float, step: float = 50.0
) -> DesyncStats:
    """Sampled desynchronization statistics over ``[0, horizon]``."""
    if not timelines:
        raise ValueError("no timelines to analyse")
    max_groups = 1
    desync_time = 0.0
    longest = 0.0
    current = 0.0
    time = 0.0
    while time <= horizon:
        groups = len({tl.view_at(time) for tl in timelines})
        max_groups = max(max_groups, groups)
        if groups > 1:
            desync_time += step
            current += step
            longest = max(longest, current)
        else:
            current = 0.0
        time += step
    return DesyncStats(
        max_groups=max_groups,
        desync_time=desync_time,
        longest_desync=longest,
        horizon=horizon,
    )


def render_view_chart(
    timelines: list[ViewTimeline],
    horizon: float,
    width: int = 100,
) -> str:
    """ASCII rendering of Fig. 9: one row per node, one column per time
    bucket, each cell the glyph of the node's view (mod 62)."""
    if not timelines:
        return "(no data)"
    step = horizon / max(1, width)
    lines = [
        f"time: 0 .. {horizon / 1000.0:.1f}s, one column = {step / 1000.0:.2f}s; "
        "glyph = view number (mod 62)"
    ]
    for tl in timelines:
        cells = []
        for col in range(width):
            view = tl.view_at(col * step)
            cells.append(_GLYPHS[view % len(_GLYPHS)])
        lines.append(f"node {tl.node:3d} |" + "".join(cells) + "|")
    return "\n".join(lines)
