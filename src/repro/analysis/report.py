"""Plain-text rendering of experiment results.

The benchmarks regenerate the paper's tables and figures as fixed-width
text; this module is the shared renderer, so every bench's output has the
same look and can be diffed across runs.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """A fixed-width table with a title rule and an optional footnote."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

    rule = "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))
    lines = [title, rule, fmt(headers), "-" * len(rule)]
    lines.extend(fmt(row) for row in cells)
    if note:
        lines.append("")
        lines.append(f"Note: {note}")
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[str]],
    note: str = "",
) -> str:
    """A figure rendered as one row per series, one column per x value."""
    headers = [x_label] + [str(x) for x in xs]
    rows = [[name, *values] for name, values in series.items()]
    return render_table(title, headers, rows, note=note)


def format_ms(mean: float, std: float | None = None) -> str:
    """Milliseconds with optional +- std, auto-scaled to seconds when big."""
    if mean >= 10_000:
        if std is None:
            return f"{mean / 1000:.1f}s"
        return f"{mean / 1000:.1f}+-{std / 1000:.1f}s"
    if std is None:
        return f"{mean:.0f}ms"
    return f"{mean:.0f}+-{std:.0f}ms"
