"""Lines-of-code accounting (the paper's Tables I and II).

The paper argues the simulator's value partly through implementation
brevity: each protocol is a few hundred lines, each attack under ~120
(Tables I and II).  This module regenerates those tables for *our*
implementations, using the same convention the tables imply: physical
source lines excluding blanks, comments, and docstrings.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass
from importlib import resources

#: Protocol registry name -> implementing module (Table I rows).
PROTOCOL_MODULES: dict[str, tuple[str, ...]] = {
    "add-v1": ("protocols/addv1.py", "protocols/add_common.py"),
    "add-v2": ("protocols/addv2.py", "protocols/add_common.py"),
    "add-v3": ("protocols/addv3.py", "protocols/add_common.py"),
    "algorand": ("protocols/algorand.py",),
    "async-ba": ("protocols/asyncba.py",),
    "pbft": ("protocols/pbft.py",),
    "hotstuff-ns": ("protocols/hotstuff.py", "protocols/chained.py", "protocols/pacemakers.py"),
    "librabft": ("protocols/librabft.py", "protocols/chained.py", "protocols/pacemakers.py"),
    "tendermint": ("protocols/tendermint.py",),
}

#: Attack registry name -> implementing module (Table II rows).
ATTACK_MODULES: dict[str, tuple[str, ...]] = {
    "partition": ("attacks/partition.py",),
    "add-static": ("attacks/add_static.py",),
    "add-adaptive": ("attacks/add_adaptive.py",),
    "failstop": ("attacks/failstop.py",),
    "pbft-equivocation": ("attacks/equivocation.py",),
    "targeted-delay": ("attacks/targeted_delay.py",),
}


@dataclass(frozen=True)
class LocEntry:
    """LoC breakdown for one implementation unit."""

    name: str
    own: int  # lines in the unit's primary module
    shared: int  # lines in modules shared with sibling implementations

    @property
    def total(self) -> int:
        return self.own + self.shared


def _docstring_lines(source: str) -> set[int]:
    """Line numbers occupied by module/class/function docstrings."""
    import ast

    lines: set[int] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        body = getattr(node, "body", [])
        if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
            if isinstance(body[0].value.value, str):
                lines.update(range(body[0].lineno, body[0].end_lineno + 1))
    return lines


def count_code_lines(source: str) -> int:
    """Physical lines of code: excludes blanks, comments, and docstrings."""
    doc_lines = _docstring_lines(source)
    comment_only: set[int] = set()
    for token in tokenize.generate_tokens(io.StringIO(source).readline):
        if token.type == tokenize.COMMENT:
            prefix = source.splitlines()[token.start[0] - 1][: token.start[1]]
            if not prefix.strip():
                comment_only.add(token.start[0])
    count = 0
    for number, line in enumerate(source.splitlines(), start=1):
        if not line.strip():
            continue
        if number in doc_lines or number in comment_only:
            continue
        count += 1
    return count


def _module_loc(relative_path: str) -> int:
    source = (
        resources.files("repro").joinpath(relative_path).read_text(encoding="utf-8")
    )
    return count_code_lines(source)


def loc_table(modules: dict[str, tuple[str, ...]]) -> list[LocEntry]:
    """LoC entries for a name -> modules mapping; the first module is the
    unit's own code, the rest is shared infrastructure."""
    entries = []
    for name, paths in sorted(modules.items()):
        own = _module_loc(paths[0])
        shared = sum(_module_loc(path) for path in paths[1:])
        entries.append(LocEntry(name=name, own=own, shared=shared))
    return entries


def protocol_loc_table() -> list[LocEntry]:
    """Our Table I."""
    return loc_table(PROTOCOL_MODULES)


def attack_loc_table() -> list[LocEntry]:
    """Our Table II."""
    return loc_table(ATTACK_MODULES)
