"""Computational-cost estimation (the paper's stated future work).

The simulator does not model CPU time, so it cannot measure throughput
directly; the paper notes (§III-A3) that "one way to add this feature is to
estimate the computation time through calculating the number of
computational[ly] extensive operations, such as cryptography operations".
This module implements exactly that post-hoc model:

* every transmitted message is signed once by its sender;
* every delivered message is verified once by its receiver;
* per-decision aggregation operations (certificate assembly) are charged
  per decided slot.

Costs are supplied per operation (defaults are Ed25519-class numbers) and
combined with the simulated latency into a throughput estimate.  The model
is deliberately simple and fully documented — it refines the simulator's
"latency only" answer into a first-order "latency + CPU" answer without
pretending to cycle accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.results import SimulationResult


@dataclass(frozen=True)
class ComputationModel:
    """Per-operation CPU costs, in milliseconds.

    Defaults approximate Ed25519 on a modern core: ~0.05 ms to sign,
    ~0.15 ms to verify, ~0.2 ms per certificate aggregation.
    """

    sign_ms: float = 0.05
    verify_ms: float = 0.15
    aggregate_ms: float = 0.20

    def validate(self) -> None:
        if min(self.sign_ms, self.verify_ms, self.aggregate_ms) < 0:
            raise ValueError("operation costs must be non-negative")


@dataclass(frozen=True)
class ComputeEstimate:
    """Estimated computational profile of a run.

    Attributes:
        sign_ops / verify_ops / aggregate_ops: operation counts.
        cpu_ms_total: total modelled CPU time across the cluster.
        cpu_ms_per_node: mean modelled CPU time per node.
        adjusted_latency_ms: simulated latency plus the critical-path CPU
            share (per-node CPU, serialized with the network time).
        throughput_dps: decisions per second including CPU — the metric the
            paper says its tool cannot produce without this model.
    """

    sign_ops: int
    verify_ops: int
    aggregate_ops: int
    cpu_ms_total: float
    cpu_ms_per_node: float
    adjusted_latency_ms: float
    throughput_dps: float


def estimate_computation(
    result: SimulationResult, model: ComputationModel | None = None
) -> ComputeEstimate:
    """Apply ``model`` to a finished run.

    Operation counts are reconstructed from the traffic counters: one
    signature per transmitted message, one verification per delivery, one
    aggregation per (decided slot x node).
    """
    model = model or ComputationModel()
    model.validate()
    n = max(1, result.config.n)
    decisions = len(result.decided_values)

    sign_ops = result.counts.sent + result.counts.byzantine
    verify_ops = result.counts.delivered
    aggregate_ops = decisions * n

    cpu_total = (
        sign_ops * model.sign_ms
        + verify_ops * model.verify_ms
        + aggregate_ops * model.aggregate_ms
    )
    cpu_per_node = cpu_total / n
    adjusted_latency = result.latency + cpu_per_node
    throughput = (
        result.config.num_decisions / (adjusted_latency / 1000.0)
        if adjusted_latency > 0
        else 0.0
    )
    return ComputeEstimate(
        sign_ops=sign_ops,
        verify_ops=verify_ops,
        aggregate_ops=aggregate_ops,
        cpu_ms_total=cpu_total,
        cpu_ms_per_node=cpu_per_node,
        adjusted_latency_ms=adjusted_latency,
        throughput_dps=throughput,
    )
