"""Experiment harness, aggregation, and paper-artifact regeneration."""

from .aggregate import (
    RunSummary,
    SummaryStats,
    partition_results,
    summarize,
    summarize_metric,
)
from .compute import ComputationModel, ComputeEstimate, estimate_computation
from .experiments import (
    DEFAULT_N,
    ExperimentCell,
    PIPELINED_DECISIONS,
    bench_jobs,
    bench_repetitions,
    decisions_for,
    network_for,
    run_cell,
    run_cell_raw,
)
from .loc import (
    ATTACK_MODULES,
    LocEntry,
    PROTOCOL_MODULES,
    attack_loc_table,
    count_code_lines,
    protocol_loc_table,
)
from .report import format_ms, render_series, render_table
from .viewtrace import (
    DesyncStats,
    ViewTimeline,
    desync_statistics,
    extract_view_timelines,
    render_view_chart,
)

__all__ = [
    "ATTACK_MODULES", "ComputationModel", "ComputeEstimate",
    "DEFAULT_N", "DesyncStats", "ExperimentCell", "estimate_computation",
    "LocEntry", "PIPELINED_DECISIONS", "PROTOCOL_MODULES", "RunSummary",
    "SummaryStats", "ViewTimeline", "attack_loc_table", "bench_jobs",
    "bench_repetitions", "count_code_lines", "decisions_for",
    "desync_statistics", "extract_view_timelines", "format_ms", "network_for",
    "partition_results",
    "protocol_loc_table", "render_series", "render_table", "render_view_chart",
    "run_cell", "run_cell_raw", "summarize", "summarize_metric",
]
