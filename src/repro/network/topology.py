"""Network topology.

The paper's simulator models a fully connected peer-to-peer overlay; the
baseline packet simulator and the partition machinery additionally need an
explicit graph view.  :class:`Topology` wraps a :mod:`networkx` graph and
answers the two questions the simulator asks: *can A currently reach B?* and
*what does the route look like?* (the latter only matters to the baseline's
hop-by-hop model).
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from ..core.errors import ConfigurationError


class Topology:
    """A reachability graph over node ids ``0..n-1``.

    The default is a complete graph (every pair connected by one logical
    link).  Links can be cut and restored at runtime — the mechanism the
    partition attacker uses.
    """

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] | None = None) -> None:
        if n < 1:
            raise ConfigurationError("topology needs at least one node")
        self.n = n
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(n))
        if edges is None:
            self.graph.add_edges_from(
                (i, j) for i in range(n) for j in range(i + 1, n)
            )
        else:
            for a, b in edges:
                self._check(a)
                self._check(b)
                self.graph.add_edge(a, b)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ConfigurationError(f"node {node} outside 0..{self.n - 1}")

    # -- queries ---------------------------------------------------------------

    def connected(self, a: int, b: int) -> bool:
        """True when a direct link ``a -- b`` currently exists."""
        self._check(a)
        self._check(b)
        return a == b or self.graph.has_edge(a, b)

    def neighbors(self, node: int) -> list[int]:
        self._check(node)
        return sorted(self.graph.neighbors(node))

    def components(self) -> list[set[int]]:
        """Connected components, largest first — the "subnets" of §III-C."""
        return sorted(nx.connected_components(self.graph), key=len, reverse=True)

    def is_fully_connected(self) -> bool:
        return nx.is_connected(self.graph) and all(
            self.graph.degree(i) == self.n - 1 for i in range(self.n)
        )

    # -- mutation ---------------------------------------------------------------

    def cut(self, a: int, b: int) -> None:
        """Remove the link between ``a`` and ``b`` (idempotent)."""
        self._check(a)
        self._check(b)
        if self.graph.has_edge(a, b):
            self.graph.remove_edge(a, b)

    def restore(self, a: int, b: int) -> None:
        """Re-add the link between ``a`` and ``b`` (idempotent)."""
        self._check(a)
        self._check(b)
        if a != b:
            self.graph.add_edge(a, b)

    def cut_between(self, group_a: Iterable[int], group_b: Iterable[int]) -> int:
        """Cut every link with one endpoint in each group; returns the number
        of links removed."""
        removed = 0
        group_b = set(group_b)
        for a in group_a:
            for b in group_b:
                if a != b and self.graph.has_edge(a, b):
                    self.graph.remove_edge(a, b)
                    removed += 1
        return removed

    def restore_all(self) -> None:
        """Return to the complete graph."""
        self.graph.add_edges_from(
            (i, j) for i in range(self.n) for j in range(i + 1, self.n)
        )

    def __repr__(self) -> str:
        return f"Topology(n={self.n}, edges={self.graph.number_of_edges()})"
