"""Network topology.

The paper's simulator models a fully connected peer-to-peer overlay; the
baseline packet simulator and the partition machinery additionally need an
explicit graph view.  :class:`Topology` wraps a :mod:`networkx` graph and
answers the two questions the simulator asks: *can A currently reach B?* and
*what does the route look like?* (the latter only matters to the baseline's
hop-by-hop model).

Scale note: the default complete graph is represented *implicitly* until the
first mutation.  Materializing ``n*(n-1)/2`` networkx edges at n = 1000
costs hundreds of megabytes and seconds of setup that the simulator never
uses on the benign path — every query over a pristine complete graph has a
closed-form answer.  The first ``cut`` (or an explicit edge list) builds the
real graph; from then on behaviour is exactly the networkx-backed one.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from ..core.errors import ConfigurationError


class Topology:
    """A reachability graph over node ids ``0..n-1``.

    The default is a complete graph (every pair connected by one logical
    link).  Links can be cut and restored at runtime — the mechanism the
    partition attacker uses.

    Attributes:
        version: monotonic mutation counter.  Increments on every
            ``cut``/``restore``/``cut_between``/``restore_all``; consumers
            that cache derived structure (the dissemination planner's
            complete-graph fast path) compare it instead of re-scanning the
            graph.
    """

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] | None = None) -> None:
        if n < 1:
            raise ConfigurationError("topology needs at least one node")
        self.n = n
        self.version = 0
        self._graph: nx.Graph | None = None
        if edges is not None:
            graph = self._materialize_empty()
            for a, b in edges:
                self._check(a)
                self._check(b)
                graph.add_edge(a, b)

    @property
    def graph(self) -> nx.Graph:
        """The explicit networkx view (materializes the complete graph)."""
        if self._graph is None:
            graph = self._materialize_empty()
            graph.add_edges_from(
                (i, j) for i in range(self.n) for j in range(i + 1, self.n)
            )
        return self._graph

    def _materialize_empty(self) -> nx.Graph:
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(self.n))
        return self._graph

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ConfigurationError(f"node {node} outside 0..{self.n - 1}")

    # -- queries ---------------------------------------------------------------

    def is_complete(self) -> bool:
        """True while the topology is still the pristine complete graph
        (no mutation ever materialized an explicit edge set).  O(1)."""
        return self._graph is None

    def connected(self, a: int, b: int) -> bool:
        """True when a direct link ``a -- b`` currently exists."""
        self._check(a)
        self._check(b)
        if self._graph is None:
            return True
        return a == b or self._graph.has_edge(a, b)

    def neighbors(self, node: int) -> list[int]:
        self._check(node)
        if self._graph is None:
            return [peer for peer in range(self.n) if peer != node]
        return sorted(self._graph.neighbors(node))

    def components(self) -> list[set[int]]:
        """Connected components, largest first — the "subnets" of §III-C."""
        if self._graph is None:
            return [set(range(self.n))]
        return sorted(nx.connected_components(self._graph), key=len, reverse=True)

    def is_fully_connected(self) -> bool:
        if self._graph is None:
            return True
        return nx.is_connected(self._graph) and all(
            self._graph.degree(i) == self.n - 1 for i in range(self.n)
        )

    # -- mutation ---------------------------------------------------------------

    def cut(self, a: int, b: int) -> None:
        """Remove the link between ``a`` and ``b`` (idempotent)."""
        self._check(a)
        self._check(b)
        self.version += 1
        graph = self.graph
        if graph.has_edge(a, b):
            graph.remove_edge(a, b)

    def restore(self, a: int, b: int) -> None:
        """Re-add the link between ``a`` and ``b`` (idempotent)."""
        self._check(a)
        self._check(b)
        self.version += 1
        if a != b:
            self.graph.add_edge(a, b)

    def cut_between(self, group_a: Iterable[int], group_b: Iterable[int]) -> int:
        """Cut every link with one endpoint in each group; returns the number
        of links removed."""
        removed = 0
        self.version += 1
        graph = self.graph
        group_b = set(group_b)
        for a in group_a:
            for b in group_b:
                if a != b and graph.has_edge(a, b):
                    graph.remove_edge(a, b)
                    removed += 1
        return removed

    def restore_all(self) -> None:
        """Return to the complete graph."""
        self.version += 1
        self._graph = None

    def __repr__(self) -> str:
        if self._graph is None:
            edges = self.n * (self.n - 1) // 2
            return f"Topology(n={self.n}, edges={edges}, complete)"
        return f"Topology(n={self.n}, edges={self._graph.number_of_edges()})"
