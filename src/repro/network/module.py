"""The network module: delay assignment, attacker hand-off, delivery.

Mirrors the paper's §III-A4 flow precisely: a sender hands the network a
message with ``source``/``dest`` set; the network assigns the ``delay``
variable from the configured distribution; the message then passes through
the attacker module, which may tamper with it subject to its capabilities;
surviving messages are registered as message events and dispatched at
``sent_at + delay``.

The capability rules declared in :mod:`repro.attacks.base` are *enforced*
here, by diffing what the attacker returns against a snapshot of what it was
given.  An attack implementation that oversteps its declared threat model
fails the run with :class:`~repro.core.errors.CapabilityError` instead of
silently producing results under a stronger adversary than advertised.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from ..attacks.base import Attacker, AttackerContext, Capability, REDACTED_PAYLOAD
from ..attacks.null import NullAttacker
from ..core.config import NetworkConfig
from ..core.errors import CapabilityError
from ..core.events import MessageEvent
from ..core.message import (
    BROADCAST,
    Message,
    deep_copy_payload,
    estimate_message_bytes,
)
from .delays import DelayModel
from .dissemination import (
    DisseminationPlan,
    TreeShape,
    gossip_labels,
    resolve_fanout,
    restricted_plan,
)
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..core.controller import Controller
    from ..faults.engine import FaultInjector


class NetworkModule:
    """Simulates the peer-to-peer network between nodes.

    Args:
        controller: owning controller (for scheduling and metrics).
        config: network parameters (distribution, bounds, GST).
        rng: dedicated numpy generator for delay sampling.
        attacker: the attack scenario; a pass-through ``NullAttacker`` in
            benign runs.
        faults: the run's environmental fault injector, or ``None`` for a
            fault-free environment.  Applied *after* the attacker, so the
            adversary never observes or controls environment effects.
    """

    def __init__(
        self,
        controller: "Controller",
        config: NetworkConfig,
        rng: np.random.Generator,
        attacker: Attacker,
        attacker_ctx: AttackerContext,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self._controller = controller
        self.config = config
        self.delay_model = DelayModel(config, rng)
        self.topology = Topology(controller.n)
        self.attacker = attacker
        self._attacker_ctx = attacker_ctx
        self.faults = faults
        self._delay_override: Callable[[Message], float | None] | None = None
        self._profiler = controller.profiler
        # Pre-computed "benign environment" flag: no environmental fault
        # schedule and no profiler — both fixed at construction.  Combined
        # with the per-message checks in ``_submit_single`` (a pass-through
        # NullAttacker — exact class, since subclasses may override
        # ``attack`` — zero corrupted nodes, tracing off), it selects a fast
        # path that skips the attacker proxy/snapshot machinery, the fault
        # engine, and the capability diffing entirely — none of which can
        # have any effect in this configuration, and none of which consume
        # RNG — so delay draws, event order, and all metrics stay
        # byte-identical.  The attacker and trace state are re-checked per
        # message because tests swap/toggle them after construction.
        self._benign_env = faults is None and controller.profiler is None
        # Hot-path bindings: one delay draw and one queue push per message.
        self._sample_delay = self.delay_model.sample_delay
        self._counts = controller.metrics.counts
        self._push_event = controller.queue.push
        # Simulated-time metrics registry (or None), bound once: like the
        # profiler it is fixed for the controller's lifetime.
        self._obs = controller.obs_metrics
        # Dissemination overlay state (tree/gossip modes only).  The shape
        # cache and the two dedicated RNG substreams are created lazily on
        # the first disseminated broadcast, so ``mode="full"`` runs issue no
        # new substreams and stay byte-identical to older versions.
        self._mode = config.dissemination
        self._shape_obj: TreeShape | None = None
        self._diss_model: DelayModel | None = None
        self._gossip_rng: np.random.Generator | None = None
        self._linkdown_specs = (
            [s for s in faults.schedule.specs if s.kind == "link-down"]
            if faults is not None
            else []
        )

    def set_delay_override(self, hook: Callable[[Message], float | None] | None) -> None:
        """Install (or clear) a delay-override hook.

        When set, the hook is consulted before the delay model for every
        message that still needs a delay; returning a value in ms uses it
        verbatim, returning ``None`` falls through to the configured
        distribution.  This is the supported way to pin transit delays from
        outside — the replay validator uses it to impose recorded delays —
        replacing ad-hoc monkey-patching of internals.
        """
        self._delay_override = hook

    # -- public entry point -------------------------------------------------

    def submit(self, message: Message) -> None:
        """Accept a message from a node (or a forged one from the attacker).

        Broadcasts are expanded to one unicast per node; the sender's own
        copy is delivered loopback (zero network delay, invisible to the
        attacker, excluded from message usage, as it never crosses the
        wire).
        """
        controller = self._controller
        now = controller.clock.now
        message.sent_at = now
        # Causal lineage: stamp the message with the id of the event being
        # handled right now (one attribute store per logical message; the
        # per-recipient copies of a broadcast inherit it via ``copy_for``).
        message.cause = controller._current_cause
        if message.dest == BROADCAST:
            # Every unicast copy carries a deep-equal payload, so the wire
            # size (canonical JSON length) is computed once and reused for
            # all n copies instead of re-serializing each one.
            wire_bytes = estimate_message_bytes(message)
            forged = message.forged
            if self._mode != "full" and not forged and controller.n > 1:
                # Honest broadcasts ride the configured dissemination
                # overlay.  Attacker-forged broadcasts always use the full
                # fan-out: the adversary injects packets directly at each
                # victim and is not bound by the honest relay discipline.
                self._submit_disseminated(message, wire_bytes)
                return
            submit_single = self._submit_single
            for dest in range(self._controller.n):
                single = message.copy_for(dest)
                single.forged = forged
                submit_single(single, wire_bytes)
        else:
            self._submit_single(message)

    # -- dissemination (tree / gossip broadcasts) ----------------------------

    def _submit_disseminated(self, message: Message, wire_bytes: int) -> None:
        """Expand a broadcast along the configured overlay (plan-ahead).

        The sender's loopback copy is delivered first (exactly as in the
        full fan-out); the remaining hops follow the dissemination plan
        with one vectorized delay batch from the ``network.dissemination``
        substream.  Every hop is charged at *origination*: its ``sent_at``
        is the broadcast time and its ``delay`` the cumulative path offset,
        so attacker/fault/partition windows and observability latency
        behave exactly like the full fan-out's unicasts (cut-through
        semantics — see :mod:`repro.network.dissemination`).
        """
        controller = self._controller
        now = message.sent_at
        source = message.source

        self_copy = message.copy_for(source, share_payload=True)
        self._submit_single(self_copy, wire_bytes)

        plan = self._broadcast_plan(source, now)
        h = plan.size
        if h == 0:
            return
        offsets = plan.arrivals(self._dissemination_delays().sample_delays(now, h))

        trace = controller.trace
        if (
            self._benign_env
            and not trace.enabled
            and self._delay_override is None
            and type(self.attacker) is NullAttacker
            and not self._attacker_ctx._corrupted_since
        ):
            # Fast tier (same predicate as the unicast fast path): nothing
            # can observe or mutate individual copies, so ONE shared message
            # and ONE shared delivery event serve every recipient — the
            # queue entry carries each hop's firing time and destination —
            # and counts are bulk-incremented.  Event push order (BFS hop
            # order) and RNG consumption match the instrumented tier
            # exactly; only per-copy allocation is elided.
            message.msg_id = controller.next_message_id()
            counts = self._counts
            counts.sent += h
            counts.bytes_sent += h * wire_bytes
            obs = self._obs
            if obs is not None:
                on_send = obs.on_send
                for relay in plan.relays.tolist():
                    on_send(relay, wire_bytes)
            controller.queue.push_deliveries(
                MessageEvent(time=now, message=message),
                (now + offsets).tolist(),
                plan.dests.tolist(),
            )
            return

        # Instrumented tier: one real copy per hop through the standard
        # single-message path (attacker proxying, fault engine, tracing).
        # Payloads are shared copy-on-write; ``_run_attacker`` unshares
        # before any non-null attacker can mutate.  The preassigned delay
        # suppresses the per-copy draw, so RNG use matches the fast tier.
        dests = plan.dests.tolist()
        relays = plan.relays.tolist()
        offset_list = offsets.tolist()
        submit_single = self._submit_single
        for i in range(h):
            hop = message.copy_for(dests[i], share_payload=True)
            hop.relay_from = relays[i]
            hop.delay = offset_list[i]
            submit_single(hop, wire_bytes)

    def _broadcast_plan(self, source: int, now: float) -> DisseminationPlan:
        """The overlay for one broadcast rooted at ``source`` at time ``now``.

        On the pristine complete graph with no active ``link-down`` window
        this is the cached k-ary shape (tree) or a fresh heap attachment of
        one drawn permutation (gossip).  Otherwise it falls back to a
        breadth-first spanning of the reachable component over currently
        usable links — gossip's permutation becomes the visit priority, so
        both branches consume identical RNG.
        """
        n = self._controller.n
        topology = self.topology
        restricted = not topology.is_complete()
        if not restricted:
            for spec in self._linkdown_specs:
                if spec.in_window(now):
                    restricted = True
                    break
        if self._mode == "gossip":
            labels = gossip_labels(self._gossip_generator(), n, source)
            if restricted:
                return restricted_plan(source, n, self._usable_at(now), labels)
            return self._shape().plan_from_labels(labels)
        if restricted:
            return restricted_plan(source, n, self._usable_at(now))
        return self._shape().plan(source)

    def _usable_at(self, now: float) -> Callable[[int, int], bool]:
        """Directed-link usability predicate at origination time ``now``."""
        topology = self.topology
        active = [s for s in self._linkdown_specs if s.in_window(now)]

        def usable(a: int, b: int) -> bool:
            if not topology.connected(a, b):
                return False
            for spec in active:
                if spec.matches_link(a, b):
                    return False
            return True

        return usable

    def overlay_relays(self, source: int) -> tuple[int, ...]:
        """Sorted relay (internal) nodes of a ``tree`` broadcast from ``source``.

        Structural overlay introspection for overlay-aware attacks: the
        non-root nodes that forward a tree broadcast rooted at ``source``.
        The tree shape is deterministic and RNG-free, so calling this never
        perturbs delay draws or fingerprints.  ``full`` dissemination has no
        relays and ``gossip`` draws a fresh overlay per broadcast (no static
        choke point), so both return an empty tuple.
        """
        if self._mode != "tree" or self._controller.n <= 1:
            return ()
        plan = self._shape().plan(source)
        return tuple(sorted(set(plan.relays.tolist()) - {source}))

    def _shape(self) -> TreeShape:
        shape = self._shape_obj
        if shape is None:
            n = self._controller.n
            shape = self._shape_obj = TreeShape(
                n, resolve_fanout(self.config.fanout, n)
            )
        return shape

    def _gossip_generator(self) -> np.random.Generator:
        rng = self._gossip_rng
        if rng is None:
            rng = self._gossip_rng = self._controller.random_source.numpy(
                "network.gossip"
            )
        return rng

    def _dissemination_delays(self) -> DelayModel:
        model = self._diss_model
        if model is None:
            model = self._diss_model = DelayModel(
                self.config,
                self._controller.random_source.numpy("network.dissemination"),
            )
        return model

    # -- internals ----------------------------------------------------------

    def _submit_single(self, message: Message, wire_bytes: int | None = None) -> None:
        controller = self._controller
        # Re-key the message with a per-run id: global construction counters
        # would leak across runs and break trace-level determinism.
        message.msg_id = controller.next_message_id()
        if message.dest == message.source and not message.forged:
            message.delay = 0.0
            controller.schedule_delivery(message)
            return

        if wire_bytes is None:
            wire_bytes = estimate_message_bytes(message)
        trace = controller.trace

        if (
            self._benign_env
            and not trace.enabled
            and self._delay_override is None
            and not message.forged
            and type(self.attacker) is NullAttacker
            and not self._attacker_ctx._corrupted_since
        ):
            # Fast path: benign attacker, no faults, no telemetry.  With no
            # corrupted nodes ``controls_message`` is always False: the send
            # is honest, the delay draw is the only RNG consumption, and the
            # delivery event is pushed directly.
            counts = self._counts
            counts.sent += 1
            counts.bytes_sent += wire_bytes
            obs = self._obs
            if obs is not None:
                obs.on_send(message.source, wire_bytes)
            delay = message.delay
            if delay is None:
                delay = message.delay = self._sample_delay(message.sent_at)
            self._push_event(
                MessageEvent(time=message.sent_at + delay, message=message)
            )
            return

        byzantine = message.forged or self._attacker_ctx.controls_message(message)
        controller.metrics.on_sent(byzantine=byzantine)
        controller.metrics.on_bytes(wire_bytes)
        # Wire accounting is charged to the physical transmitter: the relay
        # for dissemination hops, the protocol-level source otherwise.
        relay = message.relay_from
        if self._obs is not None:
            self._obs.on_send(relay if relay is not None else message.source, wire_bytes)
        if trace.enabled:
            payload = message.payload
            slot = payload.get("slot", payload.get("height"))
            view = payload.get("view", payload.get("round"))
            # Dissemination hops additionally record the relaying node; the
            # field is omitted entirely in full mode so existing trace
            # consumers and golden traces see unchanged records.
            extra = {} if relay is None else {"relay": relay}
            if byzantine:
                # Tagged so trace consumers (``repro inspect``) can reproduce
                # the honest/byzantine split of MessageCounts from the trace.
                # Attacker-*inserted* messages additionally carry
                # origin="attacker": a forged send has no honest counterpart,
                # so lineage and message-usage reconciliation must be able to
                # tell insertion from corruption of an honest sender.
                if message.forged:
                    trace.record(
                        controller.clock.now, "send", message.source,
                        dest=message.dest, msg_type=message.type,
                        msg_id=message.msg_id, size=wire_bytes, byzantine=True,
                        origin="attacker", cause=message.cause,
                        slot=slot, view=view, **extra,
                    )
                else:
                    trace.record(
                        controller.clock.now, "send", message.source,
                        dest=message.dest, msg_type=message.type,
                        msg_id=message.msg_id, size=wire_bytes, byzantine=True,
                        cause=message.cause, slot=slot, view=view, **extra,
                    )
            else:
                trace.record(
                    controller.clock.now, "send", message.source,
                    dest=message.dest, msg_type=message.type, msg_id=message.msg_id,
                    size=wire_bytes, cause=message.cause, slot=slot, view=view,
                    **extra,
                )
        prof = self._profiler
        if message.delay is None:
            if self._delay_override is not None:
                message.delay = self._delay_override(message)
            if message.delay is None:
                if prof is None:
                    message.delay = self.delay_model.sample_delay(message.sent_at)
                else:
                    t0 = _time.perf_counter()
                    message.delay = self.delay_model.sample_delay(message.sent_at)
                    prof.add("network.delay", t0)
        if prof is None:
            survivors = self._run_attacker(message)
        else:
            t0 = _time.perf_counter()
            survivors = self._run_attacker(message)
            prof.add("attacker.attack", t0)
        for survivor in survivors:
            if self.faults is None:
                controller.schedule_delivery(survivor)
            else:
                # Environmental faults act after the adversary: the attacker
                # has no visibility into (or control over) what the benign
                # environment then loses, duplicates, corrupts, or re-times.
                if prof is None:
                    delivered_batch = self.faults.apply(survivor)
                else:
                    t0 = _time.perf_counter()
                    delivered_batch = self.faults.apply(survivor)
                    prof.add("faults.apply", t0)
                for delivered in delivered_batch:
                    controller.schedule_delivery(delivered)

    def _run_attacker(self, message: Message) -> Iterable[Message]:
        """Pass one message through the attacker and enforce capabilities."""
        ctx = self._attacker_ctx
        if message.payload_shared and type(self.attacker) is not NullAttacker:
            # Copy-on-write boundary: dissemination hops share one payload
            # object.  A real attacker may legitimately mutate a controlled
            # message in place, which must never leak into sibling copies —
            # unshare first.  The exact-class NullAttacker check keeps
            # trace-only runs sharing (its ``attack`` cannot mutate).
            message.own_payload()
        observable = (
            Capability.OBSERVE in ctx.capabilities or ctx.controls_message(message)
        )
        if observable:
            proxy = message
        else:
            proxy = Message(
                source=message.source,
                dest=message.dest,
                payload=dict(REDACTED_PAYLOAD),
                sent_at=message.sent_at,
                delay=message.delay,
                msg_id=message.msg_id,
            )
        snapshot_payload = deep_copy_payload(message.payload)
        snapshot_delay = message.delay

        returned = self.attacker.attack(proxy)
        if returned is None:
            returned = [proxy]
        returned = list(returned)

        survivors: list[Message] = []
        kept = False
        for item in returned:
            if item.msg_id == message.msg_id:
                kept = True
                survivors.append(
                    self._apply_kept(message, proxy, item, snapshot_payload, snapshot_delay)
                )
            elif item.forged:
                if item.delay is None:
                    item.delay = self.delay_model.sample_delay(item.sent_at)
                survivors.append(item)
                self._controller.metrics.on_sent(byzantine=True)
                if self._obs is not None:
                    self._obs.on_send(item.source, 0)
                if self._controller.trace.enabled:
                    if item.cause is None:
                        item.cause = self._controller._current_cause
                    self._controller.trace.record(
                        self._controller.clock.now, "send", item.source,
                        dest=item.dest, msg_type=item.type, msg_id=item.msg_id,
                        forged=True, origin="attacker", cause=item.cause,
                        slot=item.payload.get("slot", item.payload.get("height")),
                        view=item.payload.get("view", item.payload.get("round")),
                    )
            else:
                raise CapabilityError(
                    "attacker returned a message it neither received nor forged: "
                    f"{item.describe()}"
                )
        if not kept:
            self._require_drop_rights(message)
            self._controller.metrics.on_dropped()
            self._controller.trace.record(
                self._controller.clock.now, "drop", message.source,
                dest=message.dest, msg_type=message.type, msg_id=message.msg_id,
            )
        return survivors

    def _apply_kept(
        self,
        message: Message,
        proxy: Message,
        item: Message,
        snapshot_payload: dict,
        snapshot_delay: float | None,
    ) -> Message:
        """Validate and apply the attacker's changes to a kept message."""
        ctx = self._attacker_ctx
        if item.payload != snapshot_payload and proxy is message:
            if not ctx.controls_message(message):
                raise CapabilityError(
                    f"attacker modified payload of honest message {message.describe()}; "
                    "modification requires control of the source "
                    "(corruption strictly before the send)"
                )
        if proxy is not message:
            # Redacted view: only the delay may carry information back.
            if item.payload != REDACTED_PAYLOAD:
                raise CapabilityError(
                    "attacker without OBSERVE modified a redacted payload"
                )
            message.delay = item.delay
        if message.delay != snapshot_delay:
            if (
                Capability.NETWORK not in ctx.capabilities
                and not ctx.controls_message(message)
            ):
                raise CapabilityError(
                    f"attacker re-timed message {message.describe()} without the "
                    "NETWORK capability"
                )
            if message.delay is None or message.delay < 0:
                raise CapabilityError("attacker assigned an invalid delay")
        return message

    def _require_drop_rights(self, message: Message) -> None:
        ctx = self._attacker_ctx
        if Capability.NETWORK in ctx.capabilities:
            return
        if ctx.controls_message(message):
            return
        raise CapabilityError(
            f"attacker dropped honest message {message.describe()} without the "
            "NETWORK capability"
        )
