"""The network module: delay assignment, attacker hand-off, delivery.

Mirrors the paper's §III-A4 flow precisely: a sender hands the network a
message with ``source``/``dest`` set; the network assigns the ``delay``
variable from the configured distribution; the message then passes through
the attacker module, which may tamper with it subject to its capabilities;
surviving messages are registered as message events and dispatched at
``sent_at + delay``.

The capability rules declared in :mod:`repro.attacks.base` are *enforced*
here, by diffing what the attacker returns against a snapshot of what it was
given.  An attack implementation that oversteps its declared threat model
fails the run with :class:`~repro.core.errors.CapabilityError` instead of
silently producing results under a stronger adversary than advertised.
"""

from __future__ import annotations

import copy
import time as _time
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from ..attacks.base import Attacker, AttackerContext, Capability, REDACTED_PAYLOAD
from ..core.config import NetworkConfig
from ..core.errors import CapabilityError
from ..core.message import BROADCAST, Message, estimate_message_bytes
from .delays import DelayModel
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..core.controller import Controller
    from ..faults.engine import FaultInjector


class NetworkModule:
    """Simulates the peer-to-peer network between nodes.

    Args:
        controller: owning controller (for scheduling and metrics).
        config: network parameters (distribution, bounds, GST).
        rng: dedicated numpy generator for delay sampling.
        attacker: the attack scenario; a pass-through ``NullAttacker`` in
            benign runs.
        faults: the run's environmental fault injector, or ``None`` for a
            fault-free environment.  Applied *after* the attacker, so the
            adversary never observes or controls environment effects.
    """

    def __init__(
        self,
        controller: "Controller",
        config: NetworkConfig,
        rng: np.random.Generator,
        attacker: Attacker,
        attacker_ctx: AttackerContext,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self._controller = controller
        self.config = config
        self.delay_model = DelayModel(config, rng)
        self.topology = Topology(controller.n)
        self.attacker = attacker
        self._attacker_ctx = attacker_ctx
        self.faults = faults
        self._delay_override: Callable[[Message], float | None] | None = None
        self._profiler = controller.profiler

    def set_delay_override(self, hook: Callable[[Message], float | None] | None) -> None:
        """Install (or clear) a delay-override hook.

        When set, the hook is consulted before the delay model for every
        message that still needs a delay; returning a value in ms uses it
        verbatim, returning ``None`` falls through to the configured
        distribution.  This is the supported way to pin transit delays from
        outside — the replay validator uses it to impose recorded delays —
        replacing ad-hoc monkey-patching of internals.
        """
        self._delay_override = hook

    # -- public entry point -------------------------------------------------

    def submit(self, message: Message) -> None:
        """Accept a message from a node (or a forged one from the attacker).

        Broadcasts are expanded to one unicast per node; the sender's own
        copy is delivered loopback (zero network delay, invisible to the
        attacker, excluded from message usage, as it never crosses the
        wire).
        """
        now = self._controller.clock.now
        message.sent_at = now
        if message.dest == BROADCAST:
            for dest in range(self._controller.n):
                single = message.copy_for(dest)
                single.forged = message.forged
                self._submit_single(single)
        else:
            self._submit_single(message)

    # -- internals ----------------------------------------------------------

    def _submit_single(self, message: Message) -> None:
        controller = self._controller
        # Re-key the message with a per-run id: global construction counters
        # would leak across runs and break trace-level determinism.
        message.msg_id = controller.next_message_id()
        if message.dest == message.source and not message.forged:
            message.delay = 0.0
            controller.schedule_delivery(message)
            return

        byzantine = message.forged or self._attacker_ctx.controls_message(message)
        controller.metrics.on_sent(byzantine=byzantine)
        controller.metrics.on_bytes(estimate_message_bytes(message))
        if byzantine:
            # Tagged so trace consumers (``repro inspect``) can reproduce
            # the honest/byzantine split of MessageCounts from the trace.
            controller.trace.record(
                controller.clock.now, "send", message.source,
                dest=message.dest, msg_type=message.type, msg_id=message.msg_id,
                size=estimate_message_bytes(message), byzantine=True,
            )
        else:
            controller.trace.record(
                controller.clock.now, "send", message.source,
                dest=message.dest, msg_type=message.type, msg_id=message.msg_id,
                size=estimate_message_bytes(message),
            )
        prof = self._profiler
        if message.delay is None:
            if self._delay_override is not None:
                message.delay = self._delay_override(message)
            if message.delay is None:
                if prof is None:
                    message.delay = self.delay_model.sample_delay(message.sent_at)
                else:
                    t0 = _time.perf_counter()
                    message.delay = self.delay_model.sample_delay(message.sent_at)
                    prof.add("network.delay", t0)
        if prof is None:
            survivors = self._run_attacker(message)
        else:
            t0 = _time.perf_counter()
            survivors = self._run_attacker(message)
            prof.add("attacker.attack", t0)
        for survivor in survivors:
            if self.faults is None:
                controller.schedule_delivery(survivor)
            else:
                # Environmental faults act after the adversary: the attacker
                # has no visibility into (or control over) what the benign
                # environment then loses, duplicates, corrupts, or re-times.
                if prof is None:
                    delivered_batch = self.faults.apply(survivor)
                else:
                    t0 = _time.perf_counter()
                    delivered_batch = self.faults.apply(survivor)
                    prof.add("faults.apply", t0)
                for delivered in delivered_batch:
                    controller.schedule_delivery(delivered)

    def _run_attacker(self, message: Message) -> Iterable[Message]:
        """Pass one message through the attacker and enforce capabilities."""
        ctx = self._attacker_ctx
        observable = (
            Capability.OBSERVE in ctx.capabilities or ctx.controls_message(message)
        )
        if observable:
            proxy = message
        else:
            proxy = Message(
                source=message.source,
                dest=message.dest,
                payload=dict(REDACTED_PAYLOAD),
                sent_at=message.sent_at,
                delay=message.delay,
                msg_id=message.msg_id,
            )
        snapshot_payload = copy.deepcopy(message.payload)
        snapshot_delay = message.delay

        returned = self.attacker.attack(proxy)
        if returned is None:
            returned = [proxy]
        returned = list(returned)

        survivors: list[Message] = []
        kept = False
        for item in returned:
            if item.msg_id == message.msg_id:
                kept = True
                survivors.append(
                    self._apply_kept(message, proxy, item, snapshot_payload, snapshot_delay)
                )
            elif item.forged:
                if item.delay is None:
                    item.delay = self.delay_model.sample_delay(item.sent_at)
                survivors.append(item)
                self._controller.metrics.on_sent(byzantine=True)
                self._controller.trace.record(
                    self._controller.clock.now, "send", item.source,
                    dest=item.dest, msg_type=item.type, msg_id=item.msg_id, forged=True,
                )
            else:
                raise CapabilityError(
                    "attacker returned a message it neither received nor forged: "
                    f"{item.describe()}"
                )
        if not kept:
            self._require_drop_rights(message)
            self._controller.metrics.on_dropped()
            self._controller.trace.record(
                self._controller.clock.now, "drop", message.source,
                dest=message.dest, msg_type=message.type, msg_id=message.msg_id,
            )
        return survivors

    def _apply_kept(
        self,
        message: Message,
        proxy: Message,
        item: Message,
        snapshot_payload: dict,
        snapshot_delay: float | None,
    ) -> Message:
        """Validate and apply the attacker's changes to a kept message."""
        ctx = self._attacker_ctx
        if item.payload != snapshot_payload and proxy is message:
            if not ctx.controls_message(message):
                raise CapabilityError(
                    f"attacker modified payload of honest message {message.describe()}; "
                    "modification requires control of the source "
                    "(corruption strictly before the send)"
                )
        if proxy is not message:
            # Redacted view: only the delay may carry information back.
            if item.payload != REDACTED_PAYLOAD:
                raise CapabilityError(
                    "attacker without OBSERVE modified a redacted payload"
                )
            message.delay = item.delay
        if message.delay != snapshot_delay:
            if (
                Capability.NETWORK not in ctx.capabilities
                and not ctx.controls_message(message)
            ):
                raise CapabilityError(
                    f"attacker re-timed message {message.describe()} without the "
                    "NETWORK capability"
                )
            if message.delay is None or message.delay < 0:
                raise CapabilityError("attacker assigned an invalid delay")
        return message

    def _require_drop_rights(self, message: Message) -> None:
        ctx = self._attacker_ctx
        if Capability.NETWORK in ctx.capabilities:
            return
        if ctx.controls_message(message):
            return
        raise CapabilityError(
            f"attacker dropped honest message {message.describe()} without the "
            "NETWORK capability"
        )
