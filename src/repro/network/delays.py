"""Message-delay distributions.

The paper's network module assigns each message a ``delay`` variable sampled
from a configurable distribution — "such as a Gaussian distribution or a
Poisson distribution, which can easily be changed to simulate various types
of networks" (§III-A4).  This module provides those distributions behind a
single :class:`DelaySampler` interface plus a :class:`DelayModel` that adds
the bounding and GST semantics of the three network models (§II-B).

All delays are milliseconds.  Samplers draw from a numpy
:class:`~numpy.random.Generator` owned by the caller so the whole network is
one named random substream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from ..core.config import NetworkConfig
from ..core.errors import ConfigurationError


class DelaySampler(ABC):
    """Draws one transit delay per call."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Return one delay sample in milliseconds (unbounded, may be <= 0;
        bounding is the :class:`DelayModel`'s job)."""

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Return ``size`` delay samples as a float64 vector.

        Contract: **stream-identical** to ``size`` successive
        :meth:`sample` calls on the same generator — numpy's ``Generator``
        draws vectorized and scalar variates from the same stream, which
        the built-in samplers exploit; this default simply loops, so custom
        samplers inherit the contract for free.
        """
        return np.array([self.sample(rng) for _ in range(size)], dtype=np.float64)

    def describe(self) -> str:
        return type(self).__name__


class ConstantDelay(DelaySampler):
    """Every message takes exactly ``value`` ms (ideal lab network)."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value)

    def describe(self) -> str:
        return f"constant({self.value})"


class UniformDelay(DelaySampler):
    """Uniform on ``[mean - spread, mean + spread]`` with
    ``spread = std * sqrt(3)`` so that mean/std match the configuration."""

    def __init__(self, mean: float, std: float) -> None:
        self.mean = float(mean)
        self.spread = float(std) * float(np.sqrt(3.0))

    def sample(self, rng: np.random.Generator) -> float:
        return rng.uniform(self.mean - self.spread, self.mean + self.spread)

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.mean - self.spread, self.mean + self.spread, size)

    def describe(self) -> str:
        return f"uniform(mean={self.mean}, spread={self.spread:.1f})"


class NormalDelay(DelaySampler):
    """Gaussian N(mean, std) — the paper's default workload family."""

    def __init__(self, mean: float, std: float) -> None:
        self.mean = float(mean)
        self.std = float(std)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.normal(self.mean, self.std)

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.normal(self.mean, self.std, size)

    def describe(self) -> str:
        return f"normal({self.mean}, {self.std})"


class LogNormalDelay(DelaySampler):
    """Log-normal with the *target* mean/std (heavy-tailed WAN-like links).

    The underlying normal parameters are solved from the requested moments:
    ``sigma^2 = ln(1 + (std/mean)^2)``, ``mu = ln(mean) - sigma^2 / 2``.
    """

    def __init__(self, mean: float, std: float) -> None:
        if mean <= 0:
            raise ConfigurationError("lognormal mean must be > 0")
        ratio = (std / mean) ** 2 if mean else 0.0
        self.sigma = float(np.sqrt(np.log1p(ratio)))
        self.mu = float(np.log(mean) - self.sigma**2 / 2.0)
        self.mean = float(mean)
        self.std = float(std)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size)

    def describe(self) -> str:
        return f"lognormal(mean={self.mean}, std={self.std})"


class ExponentialDelay(DelaySampler):
    """Exponential with the given mean (memoryless congestion model)."""

    def __init__(self, mean: float, std: float = 0.0) -> None:
        if mean <= 0:
            raise ConfigurationError("exponential mean must be > 0")
        self.mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self.mean, size)

    def describe(self) -> str:
        return f"exponential(mean={self.mean})"


class PoissonDelay(DelaySampler):
    """Poisson-distributed integer delays with the given mean."""

    def __init__(self, mean: float, std: float = 0.0) -> None:
        if mean <= 0:
            raise ConfigurationError("poisson mean must be > 0")
        self.mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.poisson(self.mean))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.poisson(self.mean, size).astype(np.float64)

    def describe(self) -> str:
        return f"poisson(mean={self.mean})"


_FACTORIES: dict[str, Callable[[float, float], DelaySampler]] = {
    "constant": lambda mean, std: ConstantDelay(mean),
    "uniform": UniformDelay,
    "normal": NormalDelay,
    "lognormal": LogNormalDelay,
    "exponential": ExponentialDelay,
    "poisson": PoissonDelay,
}


def available_distributions() -> list[str]:
    """Names accepted by ``NetworkConfig.distribution``."""
    return sorted(_FACTORIES)


def register_distribution(name: str, factory: Callable[[float, float], DelaySampler]) -> None:
    """Register a custom distribution under ``name``.

    ``factory`` receives ``(mean, std)`` from the network configuration.
    Re-registering an existing name raises, to protect reproducibility of
    published configurations.
    """
    if name in _FACTORIES:
        raise ConfigurationError(f"delay distribution {name!r} already registered")
    _FACTORIES[name] = factory


def make_sampler(config: NetworkConfig) -> DelaySampler:
    """Build the sampler described by ``config``."""
    try:
        factory = _FACTORIES[config.distribution]
    except KeyError:
        raise ConfigurationError(
            f"unknown delay distribution {config.distribution!r}; "
            f"available: {available_distributions()}"
        ) from None
    return factory(config.mean, config.std)


class DelayModel:
    """Applies network-model semantics on top of a raw sampler.

    * ``min_delay`` floors every sample (progress guarantee);
    * ``max_delay`` caps samples, yielding the bounded behaviour of
      synchronous / partially-synchronous networks;
    * before ``gst``, samples are multiplied by ``pre_gst_factor`` and the
      cap is *not* applied — the unstable phase of a partially-synchronous
      network.
    """

    def __init__(self, config: NetworkConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.sampler = make_sampler(config)
        self._rng = rng
        # Hot-path scalars and the bound sample method, cached once so each
        # draw costs one call plus a handful of local comparisons instead of
        # repeated dataclass attribute lookups.  Draw order and distribution
        # are untouched: the sampler still sees the same rng stream.
        self._sample = self.sampler.sample
        self._gst = config.gst
        self._pre_gst_factor = config.pre_gst_factor
        self._max_delay = config.max_delay
        self._min_delay = config.min_delay

    def sample_delay(self, now: float) -> float:
        """One bounded delay for a message entering the network at ``now``."""
        raw = self._sample(self._rng)
        if now < self._gst:
            raw *= self._pre_gst_factor
        elif self._max_delay is not None and raw > self._max_delay:
            raw = self._max_delay
        return raw if raw > self._min_delay else self._min_delay

    def sample_delays(self, now: float, size: int) -> np.ndarray:
        """``size`` bounded delays for messages entering the network at ``now``.

        The vectorized counterpart of :meth:`sample_delay`: one batched draw
        (stream-identical to ``size`` scalar draws, see
        :meth:`DelaySampler.sample_batch`) with the same GST / ``max_delay``
        / ``min_delay`` semantics applied elementwise.  The dissemination
        overlays use this to price a whole broadcast in one call.
        """
        raw = np.asarray(self.sampler.sample_batch(self._rng, size), dtype=np.float64)
        if now < self._gst:
            raw = raw * self._pre_gst_factor
        elif self._max_delay is not None:
            np.minimum(raw, self._max_delay, out=raw)
        np.maximum(raw, self._min_delay, out=raw)
        return raw

    def describe(self) -> str:
        bound = self.config.max_delay
        regime = "async" if bound is None else f"bounded<= {bound}"
        return f"{self.sampler.describe()} [{regime}, gst={self.config.gst}]"
