"""Broadcast dissemination overlays: ``full``, ``tree``, and ``gossip``.

The paper's network module expands a broadcast into one unicast per peer —
the O(n) fan-out every BFT protocol description assumes.  At n = 1000 that
fan-out is the simulator's wall: a three-phase PBFT decision materializes
~3 million unicast copies.  Follow-up work on scalable BFT evaluation
("Simulating BFT Protocol Implementations at Scale", "Scalable Performance
Evaluation of BFT Systems Using Network Simulation" — see PAPERS.md) models
*dissemination topology* explicitly: broadcasts travel along relay overlays
(trees, gossip meshes), and that topology — not just the delay distribution
— dominates behaviour at scale.

This module computes **dissemination plans**.  A plan is the whole overlay
of one broadcast, decided at submit time ("plan-ahead" dissemination):

* every hop ``relay -> dest`` is an independent in-flight packet charged at
  the broadcast's *origination* time (exactly like the n unicasts of a full
  fan-out — attacker windows, fault windows, and partition filters evaluate
  at origination for every copy in every mode);
* per-hop delays are drawn as **one vectorized batch** from a dedicated
  RNG substream (``network.dissemination``), and arrival times accumulate
  along the overlay: a child's copy arrives at ``parent_arrival + hop
  delay``;
* ``message.source`` stays the protocol-level originator on every hop —
  votes, signatures, and corruption accounting are overlay-agnostic — while
  :attr:`~repro.core.message.Message.relay_from` carries the physical
  transmitter for link-scoped fault matching and per-node wire accounting.

Plan-ahead is what keeps the determinism contract airtight: the instrumented
(traced / attacked / faulty) and the fast benign submission paths consume
identical RNG in identical order and push delivery events in identical
order, because both consume the *same* precomputed plan.  The trade-off is
cut-through semantics: a relay that crashes (or whose copy is dropped)
mid-dissemination does not prune its subtree — those hops are already in
flight, like any packet in the full fan-out.  ``docs/scaling.md`` discusses
the modelling consequences.

Shapes
------

``tree``
    A deterministic k-ary spanning tree over ranks ``(node - root) mod n``:
    rank ``j``'s children are ranks ``k*j + 1 .. k*j + k``.  Zero RNG — the
    overlay is a pure function of ``(root, n, k)``.

``gossip``
    A seed-deterministic fanout-f push overlay, drawn fresh per broadcast:
    one permutation of the nodes (from the dedicated ``network.gossip``
    substream, rotated so the sender leads) is attached in f-ary heap
    shape, so every node pushes to at most ``f`` pseudo-random peers and
    every node receives the broadcast exactly once.  Redundant re-pushes of
    real epidemic gossip are abstracted away — message complexity stays
    ``n - 1``, comparable across modes.

Under a **restricted** graph — active ``link-down`` fault windows, or an
explicitly mutated :class:`~repro.network.topology.Topology` — both shapes
fall back to a breadth-first spanning of the *reachable* component over
usable links (deterministic neighbor order for ``tree``, permutation order
for ``gossip``).  The fanout cap is not enforced there: coverage of every
reachable node is the invariant the test battery pins, and a cap cannot
guarantee it on arbitrary graphs.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np


def resolve_fanout(fanout: int, n: int) -> int:
    """The effective relay fan-out: ``0`` (auto) means ``max(2, ceil(sqrt(n)))``.

    The auto rule yields depth-2 overlays (depth ``log_k n`` with
    ``k = ceil(sqrt(n))``), keeping end-to-end broadcast latency within a
    small multiple of a single link delay — protocol timeouts tuned for
    direct fan-out stay meaningful.
    """
    if fanout > 0:
        return fanout
    return max(2, math.ceil(math.sqrt(n)))


class DisseminationPlan:
    """One broadcast's overlay: hops in BFS order plus arrival machinery.

    Attributes:
        dests: recipient of each hop (never the root; length ``h <= n - 1``).
        relays: physical transmitter of each hop (``relays[i] -> dests[i]``).
        parent_pos: for each hop, ``1 +`` the hop index of the relay's own
            copy, or ``0`` when the relay is the root — i.e. an index into
            an arrival vector with a virtual slot 0 holding the root's
            arrival time (0).  Vectorized accumulation indexes through it.
        levels: ``(start, end)`` hop-index ranges per BFS level; all parents
            of a level lie in earlier levels, so arrivals resolve level by
            level with one fancy-indexed numpy op each.
    """

    __slots__ = ("dests", "relays", "parent_pos", "levels", "size")

    def __init__(
        self,
        dests: np.ndarray,
        relays: np.ndarray,
        parent_pos: np.ndarray,
        levels: list[tuple[int, int]],
    ) -> None:
        self.dests = dests
        self.relays = relays
        self.parent_pos = parent_pos
        self.levels = levels
        self.size = len(dests)

    def arrivals(self, delays: np.ndarray) -> np.ndarray:
        """Cumulative arrival offset of each hop, given per-hop ``delays``.

        ``delays[i]`` is the transit time of hop ``i``; the returned vector
        is each recipient's arrival offset from the broadcast's origination
        (the root's copy sits at offset 0 in the virtual leading slot).
        """
        extended = np.empty(self.size + 1)
        extended[0] = 0.0
        parent_pos = self.parent_pos
        for start, end in self.levels:
            extended[start + 1:end + 1] = (
                extended[parent_pos[start:end]] + delays[start:end]
            )
        return extended[1:]


def _heap_shape(n: int, fanout: int) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Parent positions and level ranges of an f-ary heap over ``n`` slots.

    Slot 0 is the root; slot ``j``'s parent is ``(j - 1) // fanout``.  Hops
    are slots ``1..n-1`` (hop index ``j - 1``), so hop ``i``'s
    ``parent_pos`` — the index into the root-prefixed arrival vector — is
    exactly the parent's slot number.
    """
    slots = np.arange(1, n, dtype=np.int64)
    parent_pos = (slots - 1) // fanout
    levels: list[tuple[int, int]] = []
    start = 0  # hop index of the current level's first hop
    width = fanout
    while start < n - 1:
        end = min(start + width, n - 1)
        levels.append((start, end))
        start = end
        width *= fanout
    return parent_pos, levels


class TreeShape:
    """Cached rank-space k-ary tree for one ``(n, fanout)``; root-rotated
    per broadcast with two vectorized modular adds."""

    def __init__(self, n: int, fanout: int) -> None:
        self.n = n
        self.fanout = fanout
        self._ranks = np.arange(1, n, dtype=np.int64)
        self._parent_pos, self._levels = _heap_shape(n, fanout)

    def plan(self, root: int) -> DisseminationPlan:
        n = self.n
        dests = (root + self._ranks) % n
        relays = (root + self._parent_pos) % n
        return DisseminationPlan(dests, relays, self._parent_pos, self._levels)

    def plan_from_labels(self, labels: np.ndarray) -> DisseminationPlan:
        """The heap shape over an explicit slot labelling (``labels[0]`` is
        the root) — the gossip overlay's per-broadcast draw."""
        return DisseminationPlan(
            labels[1:], labels[self._parent_pos], self._parent_pos, self._levels
        )


def gossip_labels(rng: np.random.Generator, n: int, root: int) -> np.ndarray:
    """One seed-deterministic slot labelling for a gossip broadcast.

    Draws a single permutation of ``0..n-1`` from the dedicated gossip
    substream, then deterministically swaps ``root`` into slot 0.  One RNG
    consumption per broadcast, independent of fanout.
    """
    perm = rng.permutation(n)
    if perm[0] != root:
        at = int(np.nonzero(perm == root)[0][0])
        perm[0], perm[at] = perm[at], perm[0]
    return perm


def restricted_plan(
    root: int,
    n: int,
    usable: Callable[[int, int], bool],
    priority: Sequence[int] | None = None,
) -> DisseminationPlan:
    """Breadth-first spanning of the component reachable from ``root``.

    ``usable(a, b)`` answers whether the directed link ``a -> b`` may carry
    a packet *right now* (topology edge present and no active ``link-down``
    window matching it).  The plan covers exactly the nodes reachable from
    ``root`` over usable links — the reachability invariant the
    dissemination test battery asserts.  ``priority`` re-orders neighbor
    visits (gossip passes its drawn permutation; ``None`` = ascending node
    id, the deterministic tree order).  The fanout cap is deliberately not
    applied: on a restricted graph a cap can strand reachable nodes behind
    saturated relays, and coverage is the invariant that matters.

    O(n^2) link probes — restricted graphs only arise under link-down
    windows or explicit topology surgery, never on the benign hot path.
    """
    if priority is None:
        order = range(n)
    else:
        order = [int(node) for node in priority]
    reached = bytearray(n)
    reached[root] = 1
    frontier = [root]
    dests: list[int] = []
    relays: list[int] = []
    parent_pos: list[int] = []
    levels: list[tuple[int, int]] = []
    arrival_pos = {root: 0}  # node -> index into the root-prefixed arrivals
    while frontier:
        level_start = len(dests)
        next_frontier: list[int] = []
        for relay in frontier:
            for dest in order:
                if reached[dest] or not usable(relay, dest):
                    continue
                reached[dest] = 1
                dests.append(dest)
                relays.append(relay)
                parent_pos.append(arrival_pos[relay])
                arrival_pos[dest] = len(dests)
                next_frontier.append(dest)
        if len(dests) > level_start:
            levels.append((level_start, len(dests)))
        frontier = next_frontier
    return DisseminationPlan(
        np.asarray(dests, dtype=np.int64),
        np.asarray(relays, dtype=np.int64),
        np.asarray(parent_pos, dtype=np.int64),
        levels,
    )
