"""The simulated peer-to-peer network: delays, topology, partitions."""

from .delays import (
    ConstantDelay,
    DelayModel,
    DelaySampler,
    ExponentialDelay,
    LogNormalDelay,
    NormalDelay,
    PoissonDelay,
    UniformDelay,
    available_distributions,
    make_sampler,
    register_distribution,
)
from .module import NetworkModule
from .partition import PartitionSpec
from .topology import Topology

__all__ = [
    "ConstantDelay", "DelayModel", "DelaySampler", "ExponentialDelay",
    "LogNormalDelay", "NetworkModule", "NormalDelay", "PartitionSpec",
    "PoissonDelay", "Topology", "UniformDelay", "available_distributions",
    "make_sampler", "register_distribution",
]
