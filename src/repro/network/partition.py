"""Partition specifications.

A :class:`PartitionSpec` describes how to split ``n`` nodes into subnets and
for how long — the input of the network-partition attack (paper §III-C,
Fig. 6).  The spec itself is passive data; enforcement lives in
:class:`repro.attacks.partition.PartitionAttacker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class PartitionSpec:
    """A timed partition of the node set.

    Attributes:
        groups: disjoint subnets; every node must appear in exactly one
            group.  Messages *within* a group flow normally; messages
            *between* groups are dropped (or delayed, see ``mode``).
        start: simulation time (ms) at which the partition begins.
        end: simulation time (ms) at which it heals.  The paper's Fig. 6
            heals at 60 s.
        mode: ``"drop"`` silently discards cross-group messages;
            ``"delay"`` holds them and delivers them right after healing —
            both behaviours the paper allows its partition attacker
            ("either drop or delay the packets between different subnets").
    """

    groups: tuple[frozenset[int], ...]
    start: float = 0.0
    end: float = 60_000.0
    mode: str = "drop"

    def __post_init__(self) -> None:
        if self.mode not in ("drop", "delay"):
            raise ConfigurationError(f"partition mode must be drop|delay, got {self.mode!r}")
        if self.end <= self.start:
            raise ConfigurationError("partition must end after it starts")
        seen: set[int] = set()
        for group in self.groups:
            overlap = seen & group
            if overlap:
                raise ConfigurationError(f"nodes {sorted(overlap)} appear in two groups")
            seen |= group
        if len(self.groups) < 2:
            raise ConfigurationError("a partition needs at least two groups")

    def group_of(self, node: int) -> int:
        """Index of the group containing ``node``; ``-1`` if unlisted
        (unlisted nodes are treated as their own singleton subnet)."""
        for index, group in enumerate(self.groups):
            if node in group:
                return index
        return -1

    def separated(self, a: int, b: int) -> bool:
        """True when the partition blocks direct traffic ``a -> b``."""
        ga, gb = self.group_of(a), self.group_of(b)
        if a == b:
            return False
        if ga == -1 and gb == -1:
            return a != b  # two unlisted nodes are singleton subnets
        return ga != gb

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end

    @staticmethod
    def halves(n: int, start: float = 0.0, end: float = 60_000.0, mode: str = "drop") -> "PartitionSpec":
        """Even/odd split into two near-equal halves.

        Splitting by parity rather than by range matters for round-robin
        leader protocols: both subnets keep seeing scheduled leaders, which
        is the adversarially interesting case."""
        left = frozenset(range(0, n, 2))
        right = frozenset(range(1, n, 2))
        return PartitionSpec(groups=(left, right), start=start, end=end, mode=mode)

    @staticmethod
    def split(groups: list[list[int]], start: float, end: float, mode: str = "drop") -> "PartitionSpec":
        """Build a spec from plain lists (convenience for config files)."""
        return PartitionSpec(
            groups=tuple(frozenset(g) for g in groups), start=start, end=end, mode=mode
        )
