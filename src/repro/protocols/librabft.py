"""LibraBFT (DiemBFT): chained HotStuff with a timeout-certificate pacemaker.

The paper's §III-B6: structurally HotStuff, but view synchronization is
certificate-driven.  On a local timeout a replica does **not** advance by
itself — it broadcasts a ``TIMEOUT`` vote for its round and keeps
retransmitting it.  Only a *timeout certificate* (TC: ``n - f`` distinct
timeout votes for the same round) moves replicas to the next round, so
honest replicas can never drift more than one message delay apart.

That single difference yields the paper's headline contrasts:

* Fig. 5 — with an underestimated ``lambda`` the adaptive timeout settles at
  a workable value while TCs keep everyone together: latency stays flat.
* Fig. 6 — during a partition no TC can form (no quorum in either half), so
  replicas simply hold their round and keep retransmitting timeout votes at
  a fixed cadence; seconds after the partition heals the votes combine into
  a TC and the protocol resumes (no accumulated exponential backlog).
"""

from __future__ import annotations

from typing import Any

from ..core.events import TimeEvent
from ..core.message import Message
from ..crypto.quorum import QuorumCertificate, make_tc
from .base import VoteCounter
from .chained import ChainedHotStuffBase
from .pacemakers import AdaptiveTimeoutPolicy
from .registry import register_protocol


@register_protocol("librabft")
class LibraBFTNode(ChainedHotStuffBase):
    """One honest LibraBFT replica."""

    def __init__(self, node_id: int, env: Any) -> None:
        super().__init__(node_id, env)
        self.policy = AdaptiveTimeoutPolicy(self.lam)
        self.timeout_votes = VoteCounter()  # key: round
        self._timeout_sent: set[int] = set()
        self._tc_formed: dict[int, QuorumCertificate] = {}
        self._retransmit_timer = None

    # ------------------------------------------------------------------
    # pacemaker
    # ------------------------------------------------------------------

    def pacemaker_interval(self) -> float:
        return self.policy.current()

    def on_local_timeout(self, view: int) -> None:
        """Vote to time the round out; do not advance without a TC."""
        self.policy.on_timeout()
        self._send_timeout_vote(view)
        self._arm_retransmit()

    def _send_timeout_vote(self, view: int) -> None:
        self._timeout_sent.add(view)
        self.broadcast(type="TIMEOUT", view=view, qc=self.high_qc.to_payload())

    def _arm_retransmit(self) -> None:
        """Keep resending the timeout vote at a fixed cadence.

        Timeout votes are idempotent, so retransmission costs one broadcast
        per ``lambda`` while stuck — and it is what lets the two sides of a
        healed partition discover each other's votes promptly."""
        self.cancel_timer(self._retransmit_timer)
        self._retransmit_timer = self.set_timer(
            self.lam, "timeout-retransmit", view=self.view
        )

    def on_protocol_timer(self, timer: TimeEvent) -> None:
        if timer.name != "timeout-retransmit":
            return
        view = (timer.data or {}).get("view")
        if view == self.view and view in self._timeout_sent:
            self._send_timeout_vote(view)
            self._arm_retransmit()

    def on_commit(self, view: int) -> None:
        self.policy.on_commit()

    def on_recover(self) -> None:
        """Also restart timeout-vote retransmission if the replica crashed
        while voting to time its round out."""
        super().on_recover()
        if self.view in self._timeout_sent:
            self._arm_retransmit()

    def proposal_ready(self, view: int) -> bool:
        if super().proposal_ready(view):
            return True
        return (view - 1) in self._tc_formed

    # ------------------------------------------------------------------
    # pacemaker messages
    # ------------------------------------------------------------------

    def on_extra_message(self, message: Message) -> None:
        if message.payload.get("type") != "TIMEOUT":
            return
        payload = message.payload
        view = int(payload["view"])
        self.update_high_qc(QuorumCertificate.from_payload(payload.get("qc")))
        count = self.timeout_votes.add(view, message.source)
        if count >= self.quorum("available") and view not in self._tc_formed:
            self._tc_formed[view] = make_tc(view, self.timeout_votes.voters(view))
            if view >= self.view:
                self.advance_to_view(view + 1, via="tc")
            self._try_propose()
