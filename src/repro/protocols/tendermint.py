"""Tendermint consensus (Buchman, Kwon, Milosevic 2018) — extension protocol.

Tendermint is cited by the paper ([26]) among the newer blockchain
protocols its simulator targets; it is not part of the evaluated eight, so
it ships here as the demonstration that the protocol registry genuinely
extends: registering this module is all it took for Tendermint to run
under every network model, attack, engine, and test matrix in the suite.

Protocol (one height = one slot; simplified from the arXiv algorithm but
keeping the safety-critical locking rules):

* rounds ``r = 0, 1, ...`` with proposer ``(height + round) mod n``;
* **propose** — the proposer broadcasts its valid value (or a fresh one);
  replicas start ``timeout_propose``;
* **prevote** — on a proposal, prevote its value if not locked on a
  conflicting one (else prevote the lock — never abandon a lock for an
  unjustified value); on timeout, prevote ``nil``;
* **precommit** — on a prevote quorum for ``v``: lock ``v`` at this round,
  record it as the valid value, and precommit ``v``; on a quorum of
  prevotes that cannot certify any value, precommit ``nil``;
* **decide** — on a precommit quorum for ``v``; a quorum of ``nil``/mixed
  precommits instead starts round ``r + 1``.

Timeouts grow *linearly* with the round number
(``lambda * (1 + round/2)``) — Tendermint's documented policy, a third
pacemaker personality between HotStuff+NS's exponential per-node back-off
and LibraBFT's certificate-synchronized rounds.

Quorums are ``ceil((n+f+1)/2)``; safety comes from lock/quorum
intersection exactly as in PBFT.
"""

from __future__ import annotations

from typing import Any

from ..core.events import TimeEvent
from ..core.message import Message
from ..crypto.quorum import QuorumCertificate, make_qc
from .base import BFTProtocol, PARTIALLY_SYNCHRONOUS, VoteCounter
from .registry import register_protocol

#: The "no value" vote.
NIL = "<nil>"


@register_protocol("tendermint")
class TendermintNode(BFTProtocol):
    """One honest Tendermint replica."""

    network_model = PARTIALLY_SYNCHRONOUS
    responsive = True
    pipelined = False
    supports_recovery = True

    def __init__(self, node_id: int, env: Any) -> None:
        super().__init__(node_id, env)
        self.height = 0
        self.round = 0
        self.locked_value: Any = None
        self.locked_round = -1
        self.valid_value: Any = None
        self.proposals: dict[tuple[int, int], Any] = {}  # (h, r) -> value
        self.prevotes = VoteCounter()  # key: (h, r, value)
        self.prevote_seen = VoteCounter()  # key: (h, r) distinct voters
        self.precommits = VoteCounter()  # key: (h, r, value)
        self.precommit_seen = VoteCounter()  # key: (h, r)
        self._prevoted: set[tuple[int, int]] = set()
        self._precommitted: set[tuple[int, int]] = set()
        self._decided_heights: set[int] = set()
        # height -> (value, precommit certificate): transferable evidence of
        # the decision, served to recovering replicas (see _on_sync_req).
        self._decision_certs: dict[int, tuple[Any, QuorumCertificate]] = {}
        self._catchup: dict[int, tuple[Any, QuorumCertificate]] = {}
        self._round_started: set[tuple[int, int]] = set()
        self._timer = None

    # ------------------------------------------------------------------
    # round machinery
    # ------------------------------------------------------------------

    def proposer_of(self, height: int, round_: int) -> int:
        return (height + round_) % self.n

    def _timeout(self, round_: int) -> float:
        """Tendermint's linearly increasing round timeout."""
        return self.lam * (1.0 + round_ / 2.0)

    def on_start(self) -> None:
        self._start_height(0)

    def _start_height(self, height: int) -> None:
        self.height = height
        self.locked_value = None
        self.locked_round = -1
        self.valid_value = None
        self._start_round(0)

    def _start_round(self, round_: int) -> None:
        key = (self.height, round_)
        if key in self._round_started:
            return
        self._round_started.add(key)
        self.round = round_
        self.report("view", view=round_, height=self.height)
        self.phase("propose", view=round_, height=self.height)
        self.cancel_timer(self._timer)
        self._timer = self.set_timer(
            self._timeout(round_), "round-timeout", height=self.height, round=round_
        )
        if self.proposer_of(self.height, round_) == self.id:
            value = (
                self.valid_value
                if self.valid_value is not None
                else self.proposal_value(self.height, round_)
            )
            self.broadcast(
                type="PROPOSAL", height=self.height, round=round_, value=value
            )
        self._recheck()

    def on_recover(self) -> None:
        """Rejoin after an environmental crash: replay own decisions, ask
        peers for heights decided while this replica was down (precommit
        quorums are never retransmitted), re-arm the current round's timer
        (lost with the crash — ``_start_round`` cannot be reused, the round
        is already marked started), and recheck buffered votes."""
        super().on_recover()
        self.broadcast(type="SYNC-REQ", height=self.height)
        self.cancel_timer(self._timer)
        self._timer = self.set_timer(
            self._timeout(self.round), "round-timeout",
            height=self.height, round=self.round,
        )
        self._recheck()

    def on_timer(self, timer: TimeEvent) -> None:
        if timer.name != "round-timeout":
            return
        data = timer.data or {}
        if data.get("height") != self.height or data.get("round") != self.round:
            return
        # No decision this round: prevote/precommit nil as needed, move on.
        self._prevote(self.height, self.round, NIL)
        self._precommit(self.height, self.round, NIL)
        self._start_round(self.round + 1)

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload.get("type")
        if kind == "PROPOSAL":
            height, round_ = int(payload["height"]), int(payload["round"])
            if message.source != self.proposer_of(height, round_):
                return
            self.proposals.setdefault((height, round_), payload["value"])
        elif kind == "PREVOTE":
            height, round_ = int(payload["height"]), int(payload["round"])
            if self.prevote_seen.has_voted((height, round_), message.source):
                return  # one prevote per replica per round
            self.prevote_seen.add((height, round_), message.source)
            self.prevotes.add((height, round_, payload["value"]), message.source)
        elif kind == "PRECOMMIT":
            height, round_ = int(payload["height"]), int(payload["round"])
            if self.precommit_seen.has_voted((height, round_), message.source):
                return
            self.precommit_seen.add((height, round_), message.source)
            self.precommits.add((height, round_, payload["value"]), message.source)
        elif kind == "SYNC-REQ":
            self._on_sync_req(message)
            return
        elif kind == "DECIDED":
            self._on_decided(message)
            return
        else:
            return
        self._recheck()

    # ------------------------------------------------------------------
    # crash-recovery catch-up
    # ------------------------------------------------------------------

    def _on_sync_req(self, message: Message) -> None:
        """A recovered replica asked for decisions from ``height`` onward:
        answer with one DECIDED per height, each carrying the precommit
        certificate so the receiver need not trust this replica."""
        since = int(message.payload.get("height", 0))
        for height in sorted(self._decision_certs):
            if height < since:
                continue
            value, cert = self._decision_certs[height]
            self.send(
                message.source,
                type="DECIDED",
                height=height,
                value=value,
                cert=cert.to_payload(),
            )

    def _on_decided(self, message: Message) -> None:
        """Adopt a transferred decision once its precommit certificate
        checks out (a quorum of distinct signers over the value — the same
        trust level as the precommit quorum it summarizes)."""
        payload = message.payload
        height, value = int(payload["height"]), payload["value"]
        cert = QuorumCertificate.from_payload(payload.get("cert"))
        if cert is None or not cert.valid(self.quorum()):
            return
        if cert.ref != str(value):
            return
        self._catchup.setdefault(height, (value, cert))
        while self.height in self._catchup and self.height not in self._decided_heights:
            adopted, adopted_cert = self._catchup[self.height]
            self._decide(self.height, adopted, adopted_cert.view, adopted_cert.signers)

    # ------------------------------------------------------------------
    # step transitions
    # ------------------------------------------------------------------

    def _prevote(self, height: int, round_: int, value: Any) -> None:
        if (height, round_) in self._prevoted:
            return
        self._prevoted.add((height, round_))
        self.broadcast(type="PREVOTE", height=height, round=round_, value=value)
        self.phase("prevote", view=round_, height=height)

    def _precommit(self, height: int, round_: int, value: Any) -> None:
        if (height, round_) in self._precommitted:
            return
        self._precommitted.add((height, round_))
        self.broadcast(type="PRECOMMIT", height=height, round=round_, value=value)
        self.phase("precommit", view=round_, height=height)

    def _recheck(self) -> None:
        height, round_ = self.height, self.round
        quorum = self.quorum()

        # Prevote on the current round's proposal (lock rule: never prevote
        # against a lock).
        proposal = self.proposals.get((height, round_))
        if proposal is not None:
            if self.locked_round == -1 or self.locked_value == proposal:
                self._prevote(height, round_, proposal)
            else:
                self._prevote(height, round_, self.locked_value)

        # Precommit once some value reaches a prevote quorum this round.
        for key in self.prevotes.keys():
            h, r, value = key
            if h != height or r != round_ or value == NIL:
                continue
            if self.prevotes.count(key) >= quorum:
                self.locked_value = value
                self.locked_round = round_
                self.valid_value = value
                self._precommit(height, round_, value)

        # A full round of prevotes without any certifiable value: give up
        # on the round (precommit nil).
        if self.prevote_seen.count((height, round_)) >= quorum:
            best = max(
                (
                    self.prevotes.count((height, round_, v))
                    for (h, r, v) in self.prevotes.keys()
                    if h == height and r == round_ and v != NIL
                ),
                default=0,
            )
            live = self.n - self.f
            if best + (live - self.prevote_seen.count((height, round_))) < quorum:
                self._precommit(height, round_, NIL)

        # Decide on a precommit quorum for a value (any round of this
        # height — late quorums still decide).
        for key in list(self.precommits.keys()):
            h, r, value = key
            if h != height or value == NIL:
                continue
            if self.precommits.count(key) >= quorum:
                self._decide(height, value, r, self.precommits.voters(key))
                return

        # A precommit quorum that cannot decide: next round.
        if (
            self.precommit_seen.count((height, round_)) >= quorum
            and (height, round_) in self._precommitted
        ):
            decided_possible = any(
                self.precommits.count((height, round_, v)) >= quorum
                for (h, r, v) in self.precommits.keys()
                if h == height and r == round_ and v != NIL
            )
            if not decided_possible:
                self._start_round(round_ + 1)

    def _decide(self, height: int, value: Any, round_: int, voters: frozenset[int]) -> None:
        if height in self._decided_heights:
            return
        self._decided_heights.add(height)
        self._decision_certs[height] = (value, make_qc(round_, str(value), voters))
        self.cancel_timer(self._timer)
        self.decide(height, value)
        self._start_height(height + 1)
