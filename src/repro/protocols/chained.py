"""Shared core of the chained-HotStuff protocol family.

HotStuff+NS and LibraBFT share everything except their pacemaker: the block
tree, the voting rule, quorum-certificate formation, and the three-chain
commit rule all live here.  Subclasses supply view synchronization by
implementing :meth:`ChainedHotStuffBase.on_local_timeout` and reacting to
their pacemaker's messages.

Protocol recap (chained HotStuff, Yin et al. PODC'19):

* views are numbered 1, 2, ...; the leader of view ``v`` is ``v mod n``;
* the leader proposes one block per view, extending the highest quorum
  certificate (QC) it knows;
* replicas vote for a safe proposal by sending their vote to the *next*
  view's leader, which forms a QC from ``n - f`` votes and proposes the next
  block justified by it;
* a block is committed when it heads a *three-chain* of blocks with
  consecutive views (``b3 <- b2 <- b1``, commit ``b3``);
* safety: a replica locks on the two-chain head and only votes for blocks
  that extend its lock — or that carry a QC newer than the lock (the
  liveness escape hatch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..core.events import TimeEvent
from ..core.message import Message
from ..crypto.quorum import QuorumCertificate, make_qc
from .base import BFTProtocol, PARTIALLY_SYNCHRONOUS, VoteCounter

#: Digest of the genesis block.
GENESIS_DIGEST = "genesis"


@dataclass(frozen=True)
class Block:
    """A node in the block tree.

    Attributes:
        digest: unique block identifier.
        parent: parent digest (``None`` only for genesis).
        view: the view in which the block was proposed.
        value: the application value the block carries (decided when the
            block commits).
        qc: certificate justifying the parent (``None`` only for genesis).
        height: chain length from genesis (genesis is 0).
    """

    digest: str
    parent: str | None
    view: int
    value: Any
    qc: QuorumCertificate | None
    height: int


GENESIS_BLOCK = Block(
    digest=GENESIS_DIGEST, parent=None, view=0, value=None, qc=None, height=0
)


class BlockTree:
    """The DAG of known blocks (a tree rooted at genesis)."""

    def __init__(self) -> None:
        self._blocks: dict[str, Block] = {GENESIS_DIGEST: GENESIS_BLOCK}

    def add(self, block: Block) -> None:
        """Insert ``block``; the first block for a digest wins (equivocating
        duplicates from a Byzantine leader are dropped)."""
        self._blocks.setdefault(block.digest, block)

    def get(self, digest: str | None) -> Block | None:
        if digest is None:
            return None
        return self._blocks.get(digest)

    def __contains__(self, digest: str) -> bool:
        return digest in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def ancestors(self, digest: str) -> Iterator[Block]:
        """Walk from ``digest`` towards genesis (inclusive of both ends);
        stops early at gaps."""
        block = self.get(digest)
        while block is not None:
            yield block
            block = self.get(block.parent)

    def extends(self, digest: str, ancestor: str) -> bool:
        """True when ``ancestor`` lies on the path from ``digest`` to
        genesis.  Unknown ancestry (gaps) counts as *not* extending."""
        if ancestor == GENESIS_DIGEST:
            return True
        return any(block.digest == ancestor for block in self.ancestors(digest))


class ChainedHotStuffBase(BFTProtocol):
    """Common replica logic for HotStuff+NS and LibraBFT."""

    network_model = PARTIALLY_SYNCHRONOUS
    responsive = True
    pipelined = True
    supports_recovery = True

    def __init__(self, node_id: int, env: Any) -> None:
        super().__init__(node_id, env)
        self.view = 1
        self.tree = BlockTree()
        self.high_qc = make_qc(0, GENESIS_DIGEST, frozenset())
        self.locked_qc = make_qc(0, GENESIS_DIGEST, frozenset())
        self.votes = VoteCounter()  # key: (view, digest)
        self._voted_views: set[int] = set()
        self._proposed_views: set[int] = set()
        self._proposal_by_view: dict[int, str] = {}
        self._committed: set[str] = set()
        self._timer = None

    # ------------------------------------------------------------------
    # identity / helpers
    # ------------------------------------------------------------------

    def leader_of(self, view: int) -> int:
        return view % self.n

    @property
    def is_leader(self) -> bool:
        return self.leader_of(self.view) == self.id

    def _block_digest(self, view: int) -> str:
        return f"blk(v={view},p={self.id})"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self.report("view", view=self.view)
        self._arm_timer()
        self._try_propose()

    def _arm_timer(self) -> None:
        self.cancel_timer(self._timer)
        self._timer = self.set_timer(
            self.pacemaker_interval(), "view-timeout", view=self.view
        )

    def on_timer(self, timer: TimeEvent) -> None:
        if timer.name == "view-timeout":
            if (timer.data or {}).get("view") == self.view:
                self.on_local_timeout(self.view)
        else:
            self.on_protocol_timer(timer)

    def on_recover(self) -> None:
        """Rejoin after an environmental crash: replay own decisions, re-arm
        the pacemaker timer (lost with the crash), ask peers to backfill the
        block tree, and — if this replica is the current leader — retry the
        proposal it may have missed making.

        The backfill matters because the commit rule is gap-intolerant: a
        replica whose ancestry has a hole (proposals broadcast while it was
        down are never retransmitted) would otherwise refuse to commit
        forever and the run could not terminate.
        """
        super().on_recover()
        self.broadcast(type="SYNC-REQ")
        self._arm_timer()
        self._try_propose()

    # -- pacemaker contract (implemented by subclasses) ---------------------

    def pacemaker_interval(self) -> float:
        """Current view-timer duration."""
        raise NotImplementedError

    def on_local_timeout(self, view: int) -> None:
        """The view timer fired while still in ``view``."""
        raise NotImplementedError

    def on_protocol_timer(self, timer: TimeEvent) -> None:
        """Non-view timers (subclass extensions, e.g. retransmission)."""

    def on_view_entered(self, view: int, via: str) -> None:
        """Pacemaker hook: the replica just moved to ``view`` (before the
        timer is re-armed).  ``via`` is ``"timeout"``, ``"qc"`` or ``"tc"``."""

    def proposal_ready(self, view: int) -> bool:
        """May the leader of ``view`` propose now?  Base rule: it holds a QC
        for the directly preceding view.  Subclasses add their timeout path
        (``n - f`` NEW-VIEW messages / a timeout certificate)."""
        return self.high_qc.view == view - 1

    # ------------------------------------------------------------------
    # view advancement
    # ------------------------------------------------------------------

    def advance_to_view(self, view: int, via: str) -> None:
        """Enter ``view`` (monotonically); re-arm the timer, let the leader
        propose, and vote on any proposal already buffered for it."""
        if view <= self.view:
            return
        self.view = view
        self.report("view", view=view, via=via)
        self.on_view_entered(view, via)
        self._arm_timer()
        self._try_propose()
        digest = self._proposal_by_view.get(self.view)
        if digest is not None:
            self._maybe_vote(self.tree.get(digest))

    def update_high_qc(self, qc: QuorumCertificate | None) -> None:
        """Adopt a newer QC; QC evidence for view ``w`` moves us to ``w+1``."""
        if qc is None or qc.kind != "qc":
            return
        if qc.view > self.high_qc.view:
            self.high_qc = qc
        if qc.view + 1 > self.view:
            self.advance_to_view(qc.view + 1, via="qc")

    # ------------------------------------------------------------------
    # proposing
    # ------------------------------------------------------------------

    def _try_propose(self) -> None:
        view = self.view
        if self.leader_of(view) != self.id or view in self._proposed_views:
            return
        if not self.proposal_ready(view):
            return
        self._proposed_views.add(view)
        parent = self.tree.get(self.high_qc.ref)
        height = (parent.height if parent else 0) + 1
        block = Block(
            digest=self._block_digest(view),
            parent=self.high_qc.ref,
            view=view,
            value=self.proposal_value(height - 1, view),
            qc=self.high_qc,
            height=height,
        )
        self.tree.add(block)
        self._proposal_by_view.setdefault(view, block.digest)
        self.broadcast(type="PROPOSAL", **self._proposal_payload(block))
        self.phase("propose", view=view)
        # The leader is also a replica: it votes for its own proposal
        # immediately (its loopback copy will be deduplicated by the tree).
        self._maybe_vote(block)

    def _proposal_payload(self, block: Block) -> dict[str, Any]:
        return {
            "view": block.view,
            "digest": block.digest,
            "parent": block.parent,
            "value": block.value,
            "height": block.height,
            "qc": block.qc.to_payload() if block.qc else None,
        }

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        kind = message.payload.get("type")
        if kind == "PROPOSAL":
            self._on_proposal(message)
        elif kind == "VOTE":
            self._on_vote(message)
        elif kind == "SYNC-REQ":
            self._on_sync_req(message)
        elif kind == "SYNC-RESP":
            self._on_sync_resp(message)
        else:
            self.on_extra_message(message)

    def on_extra_message(self, message: Message) -> None:
        """Subclass pacemaker messages (NEW-VIEW / TIMEOUT)."""

    def _on_proposal(self, message: Message) -> None:
        payload = message.payload
        view = int(payload["view"])
        if message.source != self.leader_of(view):
            return
        qc = QuorumCertificate.from_payload(payload.get("qc"))
        if qc is None:
            return
        if not self._justification_valid(payload, qc):
            return
        parent = self.tree.get(payload.get("parent"))
        height = int(payload["height"])
        if parent is not None and parent.height + 1 != height:
            return  # malformed height
        block = Block(
            digest=str(payload["digest"]),
            parent=payload.get("parent"),
            view=view,
            value=payload["value"],
            qc=qc,
            height=height,
        )
        if block.digest in self.tree:
            return
        self.tree.add(block)
        self._proposal_by_view.setdefault(view, block.digest)
        self._apply_commit_rules(block)
        self.update_high_qc(qc)
        self._maybe_vote(block)

    def _justification_valid(self, payload: dict[str, Any], qc: QuorumCertificate) -> bool:
        """Is the proposal's justification acceptable?  Base rule: its QC
        must be a valid quorum (genesis is exempt)."""
        if qc.ref == GENESIS_DIGEST and qc.view == 0:
            return True
        return qc.valid(self.quorum())

    def _maybe_vote(self, block: Block | None) -> None:
        if block is None or block.view != self.view or block.view in self._voted_views:
            return
        if not self._safe_to_vote(block):
            return
        self._voted_views.add(block.view)
        next_leader = self.leader_of(block.view + 1)
        self.send(next_leader, type="VOTE", view=block.view, digest=block.digest)
        self.phase("vote", view=block.view)

    def _safe_to_vote(self, block: Block) -> bool:
        """HotStuff's safety + liveness voting rule."""
        if self.tree.extends(block.digest, self.locked_qc.ref):
            return True
        return block.qc is not None and block.qc.view > self.locked_qc.view

    def _on_vote(self, message: Message) -> None:
        payload = message.payload
        view, digest = int(payload["view"]), str(payload["digest"])
        if self.leader_of(view + 1) != self.id:
            return  # votes for view v belong to the leader of v+1
        if view + 1 < self.view:
            # Stale: this replica's pacemaker has already moved past the
            # view these votes could certify.  Dropping past-view messages
            # is standard replica hygiene — and it is precisely what makes
            # an out-of-sync cluster waste work: votes race the collector's
            # own timeout (paper §II-C1).
            return
        count = self.votes.add((view, digest), message.source)
        if count == self.quorum("available"):
            qc = make_qc(view, digest, self.votes.voters((view, digest)))
            self.update_high_qc(qc)
            self._try_propose()

    # ------------------------------------------------------------------
    # crash-recovery catch-up
    # ------------------------------------------------------------------

    def _on_sync_req(self, message: Message) -> None:
        """A recovered replica asked for our chain: ship every block from
        our high QC's tip back to genesis.  Each block travels with the QC
        that justified it, so the receiver can validate the transfer without
        trusting us."""
        blocks = [
            self._proposal_payload(block)
            for block in self.tree.ancestors(self.high_qc.ref)
            if block.digest != GENESIS_DIGEST
        ]
        if not blocks:
            return
        self.send(
            message.source,
            type="SYNC-RESP",
            blocks=list(reversed(blocks)),  # genesis-adjacent first
            high_qc=self.high_qc.to_payload(),
        )

    def _on_sync_resp(self, message: Message) -> None:
        """Ingest a peer's chain transfer: validated blocks fill ancestry
        gaps, and the commit rule is re-run from the freshest tip we now
        hold — a single filled gap can unlock a whole chain of commits."""
        for payload in message.payload.get("blocks", []):
            qc = QuorumCertificate.from_payload(payload.get("qc"))
            if qc is None or not self._justification_valid(payload, qc):
                continue
            self.tree.add(
                Block(
                    digest=str(payload["digest"]),
                    parent=payload.get("parent"),
                    view=int(payload["view"]),
                    value=payload["value"],
                    qc=qc,
                    height=int(payload["height"]),
                )
            )
        self.update_high_qc(QuorumCertificate.from_payload(message.payload.get("high_qc")))
        tip = self.tree.get(self.high_qc.ref)
        if tip is not None:
            self._apply_commit_rules(tip)

    # ------------------------------------------------------------------
    # commit rule
    # ------------------------------------------------------------------

    def _apply_commit_rules(self, block: Block) -> None:
        """Run the lock and three-chain commit rules triggered by ``block``.

        ``block`` carries ``qc`` certifying ``b1``; ``b1.qc`` certifies
        ``b2``; ``b2.qc`` certifies ``b3``.  Lock on the two-chain head
        (``b2``); commit ``b3`` when views ``b1``/``b2``/``b3`` are
        consecutive.
        """
        if block.qc is None:
            return
        b1 = self.tree.get(block.qc.ref)
        if b1 is None or b1.qc is None:
            return
        b2 = self.tree.get(b1.qc.ref)
        if b2 is None:
            return
        if b1.qc.view > self.locked_qc.view:
            self.locked_qc = b1.qc
        if b2.qc is None:
            return
        b3 = self.tree.get(b2.qc.ref)
        if b3 is None or b3.digest == GENESIS_DIGEST:
            return
        if b1.view == b2.view + 1 and b2.view == b3.view + 1:
            self._commit(b3)

    def _commit(self, block: Block) -> None:
        """Commit ``block`` and any uncommitted ancestors, oldest first.

        Slots are the block's *position on the chain* (genesis excluded),
        which is identical for every replica because the chain is agreed.
        A replica with a gap in its ancestry (it missed proposals on a
        lossy network) refuses to commit until the gap is filled — local
        sequential numbering would silently assign different slots to
        different replicas.
        """
        chain = list(self.tree.ancestors(block.digest))
        if chain[-1].digest != GENESIS_DIGEST:
            return  # ancestry gap: ordering unknown, commit must wait
        ordered = list(reversed(chain))  # genesis first
        newly: list[tuple[int, Block]] = [
            (position - 1, b)
            for position, b in enumerate(ordered)
            if position > 0 and b.digest not in self._committed
        ]
        if not newly:
            return
        for slot, b in newly:
            self._committed.add(b.digest)
            self.decide(slot, b.value)
        self.phase("commit", view=newly[-1][1].view)
        self.on_commit(newly[-1][1].view)

    def on_commit(self, view: int) -> None:
        """Pacemaker hook: a block proposed in ``view`` just committed.

        ``view`` is a property of the (agreed) chain, so every replica
        passes the same value here — pacemakers may safely key shared state
        like back-off anchors off it."""
