"""ADD+ v1: the basic protocol with deterministic round-robin leaders.

Iteration ``k``'s leader is node ``k mod n``.  Because the leader sequence
is public and fixed, a *static* attacker can decide before the run starts to
fail-stop exactly the first ``f`` scheduled leaders, forcing ``f`` wasted
iterations — the paper's Fig. 8 (left) attack, implemented in
:mod:`repro.attacks.add_static`.
"""

from __future__ import annotations

from typing import Any

from ..core.message import Message
from .add_common import ADDBase
from .registry import register_protocol


@register_protocol("add-v1")
class ADDv1Node(ADDBase):
    """One honest ADD+ v1 replica."""

    phases = ("propose", "vote", "commit", "resolve")

    def __init__(self, node_id: int, env: Any) -> None:
        super().__init__(node_id, env)
        self.proposals: dict[int, Any] = {}  # iteration -> leader's value

    def leader_of(self, iteration: int) -> int:
        return iteration % self.n

    def _phase_propose(self, iteration: int) -> None:
        if self.leader_of(iteration) == self.id:
            self.broadcast(
                type="PROPOSE", iteration=iteration, value=self.current_value(iteration)
            )

    def proposal_for(self, iteration: int):
        return self.proposals.get(iteration)

    def on_variant_message(self, message: Message) -> None:
        payload = message.payload
        if payload.get("type") != "PROPOSE":
            return
        iteration = int(payload["iteration"])
        if message.source != self.leader_of(iteration):
            return  # only the scheduled leader may propose
        self.proposals.setdefault(iteration, payload["value"])
