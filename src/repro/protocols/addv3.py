"""ADD+ v3: the prepare round — adaptive/rushing-resistant leader election.

v3 closes v2's window by *binding* each node's credential and proposal into
one atomic send: the iteration opens with a **prepare** phase in which every
node broadcasts ``(credential, value)`` together.  One ``lambda`` later,
everyone votes for the value carried by the lowest credential.

Against a rushing adaptive attacker this is decisive.  The attacker still
sees the credentials the moment the prepare messages enter the network and
can still corrupt the winner — but the winning proposal is *in the same
messages it just observed*.  Under the framework's no-retraction rule
(corruption at time ``t`` controls only messages sent strictly after ``t``)
the prepare broadcast is already beyond reach, so the iteration completes
and the protocol terminates in expected constant rounds regardless of the
corruption budget (paper Fig. 8, right).
"""

from __future__ import annotations

from typing import Any

from ..core.message import Message
from ..crypto.vrf import VRFOracle, VRFOutput
from .add_common import ADDBase
from .registry import register_protocol


@register_protocol("add-v3")
class ADDv3Node(ADDBase):
    """One honest ADD+ v3 replica."""

    phases = ("prepare", "vote", "commit", "resolve")

    def __init__(self, node_id: int, env: Any) -> None:
        super().__init__(node_id, env)
        self.vrf = VRFOracle(seed=env.seed)
        self.key = self.vrf.keygen(node_id)
        self.prepared: dict[int, list[tuple[int, Any]]] = {}  # k -> [(cred, value)]

    def _credential_input(self, iteration: int) -> str:
        return f"leader/{iteration}"

    def _phase_prepare(self, iteration: int) -> None:
        """The atomic credential-plus-proposal broadcast."""
        output = self.vrf.evaluate(self.key, self._credential_input(iteration))
        self.broadcast(
            type="PREPARE",
            iteration=iteration,
            value=self.current_value(iteration),
            credential=output.to_payload(),
        )

    def proposal_for(self, iteration: int):
        candidates = self.prepared.get(iteration, [])
        return min(candidates)[1] if candidates else None

    def on_variant_message(self, message: Message) -> None:
        payload = message.payload
        if payload.get("type") != "PREPARE":
            return
        data = payload.get("credential")
        if not isinstance(data, dict):
            return
        try:
            output = VRFOutput.from_payload(data)
        except (KeyError, TypeError, ValueError):
            return
        iteration = int(payload["iteration"])
        if output.node != message.source:
            return
        if output.input != self._credential_input(iteration):
            return
        if not self.vrf.verify(output):
            return
        entry = (output.value, payload["value"])
        bucket = self.prepared.setdefault(iteration, [])
        if entry not in bucket:
            bucket.append(entry)
