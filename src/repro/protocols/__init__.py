"""Reference BFT protocol implementations (the paper's Table I)."""

from .base import (
    ASYNCHRONOUS,
    BFTProtocol,
    PARTIALLY_SYNCHRONOUS,
    SYNCHRONOUS,
    VoteCounter,
)
from .registry import available_protocols, get_protocol, register_protocol

__all__ = [
    "ASYNCHRONOUS", "BFTProtocol", "PARTIALLY_SYNCHRONOUS", "SYNCHRONOUS",
    "VoteCounter", "available_protocols", "get_protocol", "register_protocol",
]
