"""Algorand Agreement (Chen, Gorbunov, Micali, Vlachos 2018).

The paper's representative *partition-resilient* synchronous protocol
(§III-B2).  Execution proceeds in *periods*, each a fixed schedule of steps
clocked off the synchrony parameter ``lambda``:

* **proposal** (period start) — every node broadcasts a value proposal
  carrying its VRF credential; the lowest credential acts as the period's
  leader;
* **soft-vote** (``+2*lambda``) — vote for the lowest-credential proposal
  (or for the period's starting value when one was carried over);
* **cert-vote** (event-driven) — on ``2f+1`` soft-votes for ``v``,
  cert-vote ``v``; ``2f+1`` cert-votes decide ``v``;
* **next-vote** (``+4*lambda``) — if undecided, vote to move on: for ``v``
  when ``v`` gathered a soft-vote quorum this period (a *certificate
  potential* — at most one value per period can have one), otherwise for
  the starting value, otherwise for bottom;
* ``2f+1`` next-votes for the same value start the following period with it.

Partition resilience is structural: periods only advance through
certificates, so the two sides of a partition simply *hold position* and
keep retransmitting their next-votes at a fixed cadence — no per-node
back-off accumulates (contrast HotStuff+NS, Fig. 6).  A node that
next-voted bottom switches to ``v`` after ``f+1`` next-votes for ``v``,
which lets a healed network converge even when the halves next-voted
differently.

Latency is tied to ``lambda`` by the step schedule — Algorand is *not*
responsive, which is exactly how the paper's Fig. 4 groups it.
"""

from __future__ import annotations

from typing import Any

from ..core.events import TimeEvent
from ..core.message import Message
from ..crypto.vrf import VRFOracle, VRFOutput
from .base import BFTProtocol, SYNCHRONOUS, VoteCounter
from .registry import register_protocol

#: The "bottom" next-vote value (no certificate potential this period).
BOTTOM = "<bottom>"


@register_protocol("algorand")
class AlgorandNode(BFTProtocol):
    """One honest Algorand Agreement replica."""

    network_model = SYNCHRONOUS
    responsive = False
    pipelined = False

    @classmethod
    def max_resilience(cls, n: int) -> int:
        """Algorand Agreement uses 2f+1 quorums: f < n/3 despite the
        synchronous network model (the price of partition resilience)."""
        return max(0, (n - 1) // 3)

    def __init__(self, node_id: int, env: Any) -> None:
        super().__init__(node_id, env)
        self.vrf = VRFOracle(seed=env.seed)
        self.key = self.vrf.keygen(node_id)
        self.period = 0
        self.starting_value: Any = None
        self.soft_votes = VoteCounter()  # key: (period, value)
        self.cert_votes = VoteCounter()  # key: (period, value)
        self.next_votes = VoteCounter()  # key: (period, value)
        self.proposals: dict[int, list[tuple[int, Any]]] = {}  # period -> [(cred, value)]
        self.cert_potential: dict[int, Any] = {}
        self._cert_voted: set[int] = set()
        self._next_voted: dict[int, Any] = {}
        self._decided = False
        self._step_timers: list = []

    # ------------------------------------------------------------------
    # period schedule
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self._enter_period(0, None)

    def _enter_period(self, period: int, starting_value: Any) -> None:
        self.period = period
        self.starting_value = starting_value
        self.report("view", view=period)
        for timer in self._step_timers:
            self.cancel_timer(timer)
        self._step_timers = [
            self.set_timer(2 * self.lam, "soft-vote", period=period),
            self.set_timer(4 * self.lam, "next-vote", period=period),
        ]
        value = starting_value if starting_value is not None else self.proposal_value(0, period)
        credential = self.vrf.evaluate(self.key, f"leader/{period}")
        self.broadcast(
            type="PROPOSAL",
            period=period,
            value=value,
            credential=credential.to_payload(),
        )

    def on_timer(self, timer: TimeEvent) -> None:
        if self._decided:
            return
        period = (timer.data or {}).get("period")
        if period != self.period:
            return
        if timer.name == "soft-vote":
            self._do_soft_vote()
        elif timer.name == "next-vote":
            self._do_next_vote()
        elif timer.name == "retry":
            self._retry_next_vote()

    def _do_soft_vote(self) -> None:
        if self.starting_value is not None:
            value = self.starting_value
        else:
            candidates = self.proposals.get(self.period, [])
            if candidates:
                value = min(candidates)[1]
            else:
                value = self.proposal_value(0, self.period)
        self.broadcast(type="SOFT", period=self.period, value=value)

    def _do_next_vote(self) -> None:
        value = self.cert_potential.get(self.period)
        if value is None:
            value = self.starting_value if self.starting_value is not None else BOTTOM
        self._next_voted[self.period] = value
        self.broadcast(type="NEXT", period=self.period, value=value)
        self._arm_retry()

    def _arm_retry(self) -> None:
        """Fixed-cadence retransmission of the next-vote while stuck —
        the partition-recovery mechanism."""
        self._step_timers.append(
            self.set_timer(2 * self.lam, "retry", period=self.period)
        )

    def _retry_next_vote(self) -> None:
        value = self._next_voted.get(self.period)
        if value is not None:
            self.broadcast(type="NEXT", period=self.period, value=value)
            self._arm_retry()

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload.get("type")
        if kind == "PROPOSAL":
            self._on_proposal(message)
        elif kind == "SOFT":
            self._on_soft(message)
        elif kind == "CERT":
            self._on_cert(message)
        elif kind == "NEXT":
            self._on_next(message)

    def _on_proposal(self, message: Message) -> None:
        payload = message.payload
        period = int(payload["period"])
        credential_data = payload.get("credential")
        if not isinstance(credential_data, dict):
            return
        try:
            credential = VRFOutput.from_payload(credential_data)
        except (KeyError, TypeError, ValueError):
            return
        if credential.node != message.source or credential.input != f"leader/{period}":
            return
        if not self.vrf.verify(credential):
            return  # forged credential
        self.proposals.setdefault(period, []).append((credential.value, payload["value"]))

    def _on_soft(self, message: Message) -> None:
        payload = message.payload
        period, value = int(payload["period"]), payload["value"]
        count = self.soft_votes.add((period, value), message.source)
        if count >= self.quorum() and period not in self.cert_potential:
            self.cert_potential[period] = value
            if period == self.period and period not in self._cert_voted and not self._decided:
                self._cert_voted.add(period)
                self.broadcast(type="CERT", period=period, value=value)

    def _on_cert(self, message: Message) -> None:
        payload = message.payload
        period, value = int(payload["period"]), payload["value"]
        count = self.cert_votes.add((period, value), message.source)
        if count >= self.quorum() and not self._decided:
            self._decided = True
            for timer in self._step_timers:
                self.cancel_timer(timer)
            self.decide(0, value)

    def _on_next(self, message: Message) -> None:
        payload = message.payload
        period, value = int(payload["period"]), payload["value"]
        count = self.next_votes.add((period, value), message.source)
        if self._decided:
            return
        if (
            value != BOTTOM
            and period == self.period
            and self._next_voted.get(period) == BOTTOM
            and count >= self.f + 1
        ):
            # Switch from bottom once f+1 peers vouch for a real value.
            self._next_voted[period] = value
            self.broadcast(type="NEXT", period=period, value=value)
        if count >= self.quorum() and period >= self.period:
            starting = None if value == BOTTOM else value
            self._enter_period(period + 1, starting)
