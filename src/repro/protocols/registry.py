"""Protocol registry.

Protocols register under a stable name used in configurations, the CLI-ish
experiment specs, and the paper-reproduction benchmarks.  Importing
:mod:`repro.protocols` registers the eight reference implementations.
"""

from __future__ import annotations

from typing import Callable, Type, TypeVar

from ..core.errors import ConfigurationError
from .base import BFTProtocol

_REGISTRY: dict[str, Type[BFTProtocol]] = {}

P = TypeVar("P", bound=Type[BFTProtocol])


def register_protocol(name: str) -> Callable[[P], P]:
    """Class decorator: register a protocol under ``name``.

    Example::

        @register_protocol("my-bft")
        class MyBFT(BFTProtocol):
            ...
    """

    def decorator(cls: P) -> P:
        if name in _REGISTRY:
            raise ConfigurationError(f"protocol {name!r} already registered")
        cls.protocol_name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def get_protocol(name: str) -> Type[BFTProtocol]:
    """Look up a protocol class by registry name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {available_protocols()}"
        ) from None


def available_protocols() -> list[str]:
    """Sorted names of every registered protocol."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def _ensure_builtins() -> None:
    """Import the reference implementations exactly once."""
    from . import (  # noqa: F401
        addv1,
        addv2,
        addv3,
        algorand,
        asyncba,
        hotstuff,
        librabft,
        pbft,
        tendermint,
    )
