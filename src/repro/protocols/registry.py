"""Protocol registry.

Protocols register under a stable name used in configurations, the CLI-ish
experiment specs, and the paper-reproduction benchmarks.  Importing
:mod:`repro.protocols` registers the eight reference implementations.
"""

from __future__ import annotations

from typing import Callable, Type, TypeVar

from ..core.errors import ConfigurationError
from .base import BFTProtocol

_REGISTRY: dict[str, Type[BFTProtocol]] = {}

P = TypeVar("P", bound=Type[BFTProtocol])


def register_protocol(name: str) -> Callable[[P], P]:
    """Class decorator: register a protocol under ``name``.

    A leading underscore in ``name`` registers the protocol as *unlisted*:
    usable from configurations, invisible to :func:`available_protocols`.

    Example::

        @register_protocol("my-bft")
        class MyBFT(BFTProtocol):
            ...
    """

    def decorator(cls: P) -> P:
        if name in _REGISTRY:
            raise ConfigurationError(f"protocol {name!r} already registered")
        cls.protocol_name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def get_protocol(name: str) -> Type[BFTProtocol]:
    """Look up a protocol class by registry name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {available_protocols()}"
        ) from None


def available_protocols() -> list[str]:
    """Sorted names of every *listed* registered protocol.

    Names starting with an underscore are registered but unlisted: they
    stay resolvable through :func:`get_protocol` (so configurations can
    name them explicitly) but are hidden from enumeration — the convention
    for crash-test doubles and experimental protocols, which must never
    leak into the protocol matrices, the CLI listing, or the benches.
    """
    _ensure_builtins()
    return sorted(name for name in _REGISTRY if not name.startswith("_"))


def _ensure_builtins() -> None:
    """Import the reference implementations exactly once."""
    from . import (  # noqa: F401
        addv1,
        addv2,
        addv3,
        algorand,
        asyncba,
        hotstuff,
        librabft,
        pbft,
        tendermint,
    )
