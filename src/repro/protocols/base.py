"""Base class and shared helpers for BFT protocol implementations.

Every protocol in :mod:`repro.protocols` subclasses :class:`BFTProtocol`,
which extends the simulator's :class:`~repro.core.node.Node` with the
metadata the controller and the experiment harness need: the network model
the protocol assumes, its fault resilience, and whether it is responsive
(§II-C2 — latency depends only on actual network speed, not on the
configured ``lambda``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable

from ..core.errors import ConfigurationError
from ..core.node import Node

#: Network-model labels (Table I column "Network Model").
SYNCHRONOUS = "synchronous"
PARTIALLY_SYNCHRONOUS = "partially-synchronous"
ASYNCHRONOUS = "asynchronous"


class BFTProtocol(Node):
    """Base class for honest replicas of a BFT protocol.

    Class attributes (override per protocol):
        protocol_name: registry name.
        network_model: one of the three model labels above.
        responsive: True when agreement latency depends only on actual
            network delay (PBFT, HotStuff, LibraBFT), False when it is tied
            to the ``lambda`` parameter (the synchronous protocols).
        pipelined: True for protocols the paper measures over ten decisions
            (HotStuff+NS, LibraBFT).
        supports_recovery: True when a replica crashed by the environment
            (:mod:`repro.faults` ``crash`` with a recovery time) can rejoin
            the run; such protocols override ``on_recover`` to re-arm their
            timers.  The controller rejects crash+recovery schedules for
            protocols that leave this False.
    """

    protocol_name: str = "abstract"
    network_model: str = PARTIALLY_SYNCHRONOUS
    responsive: bool = False
    pipelined: bool = False
    supports_recovery: bool = False

    @classmethod
    def max_resilience(cls, n: int) -> int:
        """Default ``f`` for ``n`` nodes: the protocol's maximum tolerance.

        Synchronous protocols tolerate a minority (``f < n/2``); partially
        synchronous and asynchronous ones tolerate ``f < n/3``.
        """
        if cls.network_model == SYNCHRONOUS:
            return max(0, (n - 1) // 2)
        return max(0, (n - 1) // 3)

    @classmethod
    def check_resilience(cls, n: int, f: int) -> None:
        """Reject configurations outside the protocol's proven bound."""
        limit = cls.max_resilience(n)
        if f > limit:
            raise ConfigurationError(
                f"{cls.protocol_name} tolerates at most f={limit} of n={n} "
                f"({cls.network_model} resilience); got f={f}"
            )

    def proposal_value(self, slot: int, view: int | None = None) -> Any:
        """A deterministic placeholder value for a fresh proposal.

        The simulator does not execute application payloads, so by default
        proposals are tagged strings carrying the proposer, slot, and view
        (enough for safety checking to be meaningful).

        Setting the protocol parameter ``block_txns`` to ``T > 0`` switches
        proposals to structured *blocks*: a dict carrying the same tag plus a
        list of ``T`` synthetic transaction strings.  The tag alone still
        identifies the value (transactions are a deterministic function of
        it), so protocols may digest blocks by tag.  Blocks give proposals a
        realistic payload weight — under ``full`` dissemination every
        recipient copy structurally copies the transaction list, while the
        ``tree``/``gossip`` overlays share it copy-on-write — without
        touching the default (``block_txns=0``) behaviour or its digests.

        When the run carries an open-loop workload, the environment offers
        a mempool batch first (``env.cut_batch`` — guarded with ``getattr``
        like ``report_phase`` so bare test environments stay valid): a
        ready batch is proposed as its plain string tag (hashable, so
        vote-counter keys and digests work unchanged), and the synthetic
        paths below remain the fallback for empty slots.
        """
        cut = getattr(self.env, "cut_batch", None)
        if cut is not None:
            batch = cut(self.id, slot, view)
            if batch is not None:
                return batch
        suffix = f"/v{view}" if view is not None else ""
        tag = f"value(slot={slot}, proposer={self.id}{suffix})"
        txns = int(self.env.protocol_param("block_txns", 0) or 0)
        if txns <= 0:
            return tag
        return {"tag": tag, "txns": [f"tx{slot}.{i}" for i in range(txns)]}


class VoteCounter:
    """Counts votes per key, guarding against double counting.

    Used by every quorum-based protocol: ``add(key, voter)`` returns the
    number of *distinct* voters for ``key`` so far, making "act exactly once
    when the quorum is first reached" a one-line pattern::

        if votes.add((view, digest), msg.source) == self.quorum():
            ...
    """

    def __init__(self) -> None:
        self._voters: dict[Hashable, set[int]] = defaultdict(set)

    def add(self, key: Hashable, voter: int) -> int:
        """Record ``voter``'s vote for ``key``; returns the updated count."""
        voters = self._voters[key]
        voters.add(voter)
        return len(voters)

    def count(self, key: Hashable) -> int:
        voters = self._voters.get(key)
        return len(voters) if voters else 0

    def voters(self, key: Hashable) -> frozenset[int]:
        return frozenset(self._voters.get(key, frozenset()))

    def has_voted(self, key: Hashable, voter: int) -> bool:
        return voter in self._voters.get(key, frozenset())

    def keys(self) -> list[Hashable]:
        return list(self._voters)

    def best(self, prefix_filter: Any = None) -> tuple[Hashable, int] | None:
        """The key with the most votes (ties broken by repr for determinism)."""
        if not self._voters:
            return None
        key = max(self._voters, key=lambda k: (len(self._voters[k]), repr(k)))
        return key, len(self._voters[key])
