"""Bracha's asynchronous binary Byzantine agreement (Inf. & Comp. 1987).

The paper's representative asynchronous protocol (§III-B3).  There are *no
timers whatsoever*: progress is driven purely by message-count thresholds,
so the protocol is untouched by the ``lambda`` configuration (paper Figs. 4
and 5 exclude it for exactly that reason) and works under unbounded delays.

Round structure (one binary consensus instance, slot 0):

1. every node broadcasts its current estimate (``PHASE1``);
2. on ``n - f`` phase-1 messages, broadcast the majority value (``PHASE2``);
3. on ``n - f`` phase-2 messages, broadcast ``PHASE3`` with the value that
   holds a strict majority among them (or an explicit "no value" marker);
4. on ``n - f`` phase-3 messages, count the non-empty proposals ``d``:
   ``d >= 2f + 1`` decides the value, ``d >= f + 1`` adopts it, otherwise
   the estimate is reset from the round's **common coin**.

Because the FLP result rules out deterministic termination, liveness is
probabilistic: every coin round succeeds with probability >= 1/2 once the
honest estimates are mixed, giving expected O(1) rounds.

Inputs: node ``i`` starts with bit ``i mod 2`` by default (the adversarially
interesting mixed-input case).  ``protocol_params["inputs"]`` may supply an
explicit list, and ``protocol_params["unanimous"]`` forces all-same inputs.
After deciding, a node keeps participating for a bounded number of rounds so
lagging peers can finish (the controller halts the run as soon as every
honest node has decided).
"""

from __future__ import annotations

from typing import Any

from ..core.message import Message
from ..crypto.common_coin import CommonCoin
from .base import ASYNCHRONOUS, BFTProtocol, VoteCounter
from .registry import register_protocol

#: Marker for "no majority value" in phase 2/3 messages.
NO_VALUE = "none"

#: How many rounds a decided node keeps helping before going quiet.
_LINGER_ROUNDS = 4


@register_protocol("async-ba")
class AsyncBANode(BFTProtocol):
    """One honest replica of Bracha's asynchronous BA."""

    network_model = ASYNCHRONOUS
    responsive = True  # progress tracks actual network speed by construction
    pipelined = False

    def __init__(self, node_id: int, env: Any) -> None:
        super().__init__(node_id, env)
        self.round = 0
        self.estimate = self._initial_estimate()
        self.coin = CommonCoin(seed=env.protocol_param("coin_seed", 0))
        self.phase1 = VoteCounter()  # key: (round, value)
        self.phase2 = VoteCounter()  # key: (round, value)
        self.phase3 = VoteCounter()  # key: (round, value)
        self.seen1 = VoteCounter()  # key: round (distinct senders, any value)
        self.seen2 = VoteCounter()
        self.seen3 = VoteCounter()
        self._advanced: dict[int, int] = {}  # round -> phase reached (1..3)
        self.decided_value: int | None = None
        self._decided_round: int | None = None

    def _initial_estimate(self) -> int:
        inputs = self.env.protocol_param("inputs")
        if inputs is not None:
            return int(inputs[self.id]) & 1
        if self.env.protocol_param("unanimous", False):
            return 1
        return self.id % 2

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self._start_round(0)

    def _start_round(self, round_: int) -> None:
        self.round = round_
        self.report("round", round=round_, estimate=self.estimate)
        self.broadcast(type="PHASE1", round=round_, value=self.estimate)
        # Quorums for this round may already be sitting in the counters
        # (asynchrony: peers can be a full round ahead of us).
        self._progress(round_)

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload.get("type")
        if kind not in ("PHASE1", "PHASE2", "PHASE3"):
            return
        round_ = int(payload["round"])
        value = payload["value"]
        if kind == "PHASE1":
            if value in (0, 1):
                self.phase1.add((round_, value), message.source)
                self.seen1.add(round_, message.source)
        elif kind == "PHASE2":
            if value in (0, 1, NO_VALUE):
                self.phase2.add((round_, value), message.source)
                self.seen2.add(round_, message.source)
        else:
            if value in (0, 1, NO_VALUE):
                self.phase3.add((round_, value), message.source)
                self.seen3.add(round_, message.source)
        self._progress(round_)

    # ------------------------------------------------------------------
    # threshold-driven state machine
    # ------------------------------------------------------------------

    def _progress(self, round_: int) -> None:
        """Advance through the round's phases as thresholds are reached.

        Thresholds are evaluated for *any* round, because an asynchronous
        replica can receive a full quorum for a round it has not started
        locally yet."""
        if round_ != self.round:
            return
        threshold = self.quorum("available")
        phase = self._advanced.get(round_, 1)
        if phase == 1 and self.seen1.count(round_) >= threshold:
            ones = self.phase1.count((round_, 1))
            zeros = self.phase1.count((round_, 0))
            majority = 1 if ones >= zeros else 0
            self._advanced[round_] = 2
            self.broadcast(type="PHASE2", round=round_, value=majority)
            phase = 2
        if phase == 2 and self.seen2.count(round_) >= threshold:
            value: Any = NO_VALUE
            for candidate in (0, 1):
                if self.phase2.count((round_, candidate)) * 2 > self.n:
                    value = candidate
            self._advanced[round_] = 3
            self.broadcast(type="PHASE3", round=round_, value=value)
            phase = 3
        if phase == 3 and self.seen3.count(round_) >= threshold:
            self._finish_round(round_)

    def _finish_round(self, round_: int) -> None:
        self._advanced[round_] = 4
        counts = {candidate: self.phase3.count((round_, candidate)) for candidate in (0, 1)}
        # At most one of 0/1 can appear in honest phase-3 messages (they all
        # report the same strict-majority value), so take the better one.
        value = max(counts, key=counts.get)
        support = counts[value]
        if support >= 2 * self.f + 1:
            self.estimate = value
            self._decide(value)
        elif support >= self.f + 1:
            self.estimate = value
        else:
            self.estimate = self.coin.flip(round_)
            self.report("coin", round=round_, value=self.estimate)
        if self._should_continue(round_):
            self._start_round(round_ + 1)

    def _decide(self, value: int) -> None:
        if self.decided_value is None:
            self.decided_value = value
            self._decided_round = self.round
            self.decide(0, value)

    def _should_continue(self, round_: int) -> bool:
        """Linger a few rounds after deciding so peers can finish; the
        controller normally stops the run well before the linger expires."""
        if self._decided_round is None:
            return True
        return round_ < self._decided_round + _LINGER_ROUNDS
