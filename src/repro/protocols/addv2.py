"""ADD+ v2: VRF-randomized leader election.

Each iteration opens with a *credential* phase: every node broadcasts its
VRF evaluation on the iteration number.  One ``lambda`` later the node
holding the lowest credential knows it is the leader and broadcasts its
proposal.  A *static* attacker gains nothing from corrupting nodes up
front — leaders are unpredictable, so a corrupted node is the leader only
with probability ``f/n`` per iteration and termination stays expected
constant-round (paper Fig. 8, left).

The remaining weakness is the one-phase gap between the credential reveal
and the proposal: a *rushing adaptive* attacker observes the credentials in
flight, identifies the iteration's leader, and corrupts it **before** it
sends its proposal.  The no-retraction rule does not protect a message that
has not been sent yet, so the iteration burns — repeatedly, until the
corruption budget ``f`` is exhausted (paper Fig. 8, right; implemented in
:mod:`repro.attacks.add_adaptive`).  Closing that gap is exactly v3's job.
"""

from __future__ import annotations

from typing import Any

from ..core.message import Message
from ..crypto.vrf import VRFOracle, VRFOutput
from .add_common import ADDBase
from .registry import register_protocol


@register_protocol("add-v2")
class ADDv2Node(ADDBase):
    """One honest ADD+ v2 replica."""

    phases = ("credential", "propose", "vote", "commit", "resolve")

    def __init__(self, node_id: int, env: Any) -> None:
        super().__init__(node_id, env)
        self.vrf = VRFOracle(seed=env.seed)
        self.key = self.vrf.keygen(node_id)
        self.credentials: dict[int, list[tuple[int, int]]] = {}  # k -> [(cred, node)]
        self.proposals: dict[int, list[tuple[int, Any]]] = {}  # k -> [(cred, value)]

    def _credential_input(self, iteration: int) -> str:
        return f"leader/{iteration}"

    def _phase_credential(self, iteration: int) -> None:
        output = self.vrf.evaluate(self.key, self._credential_input(iteration))
        self.broadcast(
            type="CREDENTIAL", iteration=iteration, credential=output.to_payload()
        )

    def _phase_propose(self, iteration: int) -> None:
        """Propose iff our credential is the lowest revealed so far."""
        known = self.credentials.get(iteration, [])
        if not known:
            return
        lowest_cred, lowest_node = min(known)
        if lowest_node != self.id:
            return
        output = self.vrf.evaluate(self.key, self._credential_input(iteration))
        self.broadcast(
            type="PROPOSE",
            iteration=iteration,
            value=self.current_value(iteration),
            credential=output.to_payload(),
        )

    def proposal_for(self, iteration: int):
        candidates = self.proposals.get(iteration, [])
        return min(candidates)[1] if candidates else None

    def on_variant_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload.get("type")
        if kind == "CREDENTIAL":
            self._on_credential(message)
        elif kind == "PROPOSE":
            self._on_propose(message)

    def _verified_credential(self, message: Message) -> VRFOutput | None:
        payload = message.payload
        data = payload.get("credential")
        if not isinstance(data, dict):
            return None
        try:
            output = VRFOutput.from_payload(data)
        except (KeyError, TypeError, ValueError):
            return None
        iteration = int(payload["iteration"])
        if output.node != message.source:
            return None
        if output.input != self._credential_input(iteration):
            return None
        if not self.vrf.verify(output):
            return None
        return output

    def _on_credential(self, message: Message) -> None:
        output = self._verified_credential(message)
        if output is None:
            return
        iteration = int(message.payload["iteration"])
        entry = (output.value, output.node)
        bucket = self.credentials.setdefault(iteration, [])
        if entry not in bucket:
            bucket.append(entry)

    def _on_propose(self, message: Message) -> None:
        output = self._verified_credential(message)
        if output is None:
            return
        iteration = int(message.payload["iteration"])
        entry = (output.value, message.payload["value"])
        bucket = self.proposals.setdefault(iteration, [])
        if entry not in bucket:
            bucket.append(entry)
