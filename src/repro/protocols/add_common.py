"""Shared machinery of the ADD+ synchronous BA family.

ADD+ (Abraham, Devadas, Dolev, Nayak, Ren 2018) is a synchronous Byzantine
agreement protocol with optimal (minority) resilience and expected
constant-round termination.  The paper implements three variants (§III-B1):

* **v1** — deterministic round-robin leaders (baseline);
* **v2** — VRF-randomized leader election, defeating *static* attackers;
* **v3** — a *prepare* round binding each node's credential and proposal in
  a single send, defeating *rushing adaptive* attackers.

All three share the same skeleton, implemented here: execution proceeds in
*iterations*; each iteration is a fixed schedule of phases clocked at
multiples of the synchrony bound ``lambda`` (the protocols assume
synchronized clocks and delivery within ``lambda``, which the synchronous
network configuration provides).  The last phase of every iteration is the
*resolve* step: decide if a commit quorum formed, otherwise start the next
iteration — so latency is a whole number of iterations, each
``(phases - 1) * lambda`` long.  Decisions are checked only at phase
boundaries; like all synchronous protocols, ADD+ is **not** responsive
(paper Fig. 4).

Thresholds: an iteration's vote/commit quorum is ``n - f`` — under synchrony
every honest message arrives within the phase window, so all honest nodes
contribute.
"""

from __future__ import annotations

from typing import Any

from ..core.events import TimeEvent
from ..core.message import Message
from .base import BFTProtocol, SYNCHRONOUS, VoteCounter


class ADDBase(BFTProtocol):
    """Common replica logic for the ADD+ variants.

    Subclasses define :attr:`phases` (names, executed at ``T + i*lambda``)
    and implement ``_phase_<name>(iteration)`` for each, reusing the vote /
    commit / resolve helpers provided here.
    """

    network_model = SYNCHRONOUS
    responsive = False
    pipelined = False

    #: Ordered phase names; override per variant.
    phases: tuple[str, ...] = ()

    def __init__(self, node_id: int, env: Any) -> None:
        super().__init__(node_id, env)
        self.iteration = 0
        self.locked_value: Any = None
        self.votes = VoteCounter()  # key: (iteration, value)
        self.commits = VoteCounter()  # key: (iteration, value)
        self.decided = False

    # ------------------------------------------------------------------
    # iteration scheduling
    # ------------------------------------------------------------------

    def iteration_duration(self) -> float:
        """Length of one iteration: the resolve phase ends it."""
        return (len(self.phases) - 1) * self.lam

    def on_start(self) -> None:
        self._start_iteration(0)

    def _start_iteration(self, iteration: int) -> None:
        self.iteration = iteration
        self.report("view", view=iteration)
        first, *rest = self.phases
        self._run_phase(first, iteration)
        for index, name in enumerate(rest, start=1):
            self.set_timer(index * self.lam, "phase", iteration=iteration, phase=name)

    def on_timer(self, timer: TimeEvent) -> None:
        if timer.name != "phase":
            return
        data = timer.data or {}
        if data.get("iteration") != self.iteration:
            return  # stale timer from an iteration we already resolved
        self._run_phase(data["phase"], self.iteration)

    def _run_phase(self, name: str, iteration: int) -> None:
        handler = getattr(self, f"_phase_{name}")
        handler(iteration)

    # ------------------------------------------------------------------
    # shared phases
    # ------------------------------------------------------------------

    def vote_for(self, iteration: int, value: Any) -> None:
        self.broadcast(type="VOTE", iteration=iteration, value=value)

    def proposal_for(self, iteration: int) -> Any:
        """The iteration's leader value, as seen by this node (variant-
        specific); ``None`` when no valid proposal arrived."""
        raise NotImplementedError

    def _phase_vote(self, iteration: int) -> None:
        """Vote, respecting the lock.

        A locked replica votes its locked value no matter what the leader
        proposed — the simulator-scale stand-in for ADD+'s status/grading
        round, and the rule that makes deciding safe: once ``n - f``
        replicas committed (hence locked) a value, no conflicting value can
        ever reach a vote quorum again."""
        if self.locked_value is not None:
            self.vote_for(iteration, self.locked_value)
            return
        candidate = self.proposal_for(iteration)
        if candidate is not None:
            self.vote_for(iteration, candidate)

    def _phase_commit(self, iteration: int) -> None:
        """Commit (and lock) the value that gathered a full vote quorum."""
        for key in self.votes.keys():
            it, value = key
            if it == iteration and self.votes.count(key) >= self.quorum("available"):
                self.locked_value = value
                self.broadcast(type="COMMIT", iteration=iteration, value=value)
                return

    def _phase_resolve(self, iteration: int) -> None:
        """Decide on a commit quorum; otherwise move to the next iteration."""
        for key in self.commits.keys():
            it, value = key
            if it == iteration and self.commits.count(key) >= self.quorum("available"):
                if not self.decided:
                    self.decided = True
                    self.decide(0, value)
                # Deciders keep participating so stragglers can finish; the
                # controller ends the run once every honest node decided.
                break
        self._start_iteration(iteration + 1)

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload.get("type")
        if kind == "VOTE":
            self.votes.add((int(payload["iteration"]), payload["value"]), message.source)
        elif kind == "COMMIT":
            self.commits.add((int(payload["iteration"]), payload["value"]), message.source)
        else:
            self.on_variant_message(message)

    def on_variant_message(self, message: Message) -> None:
        """Variant-specific message kinds (proposals, credentials)."""

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------

    def current_value(self, iteration: int) -> Any:
        """The value this node backs: its lock if any, else a fresh one."""
        if self.locked_value is not None:
            return self.locked_value
        return self.proposal_value(0, iteration)
