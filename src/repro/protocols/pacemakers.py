"""Pacemaker timeout policies.

HotStuff decouples liveness from safety behind a *PaceMaker* (paper
§III-B5); the concrete policy is the single design difference between our
HotStuff+NS and LibraBFT implementations, and the root cause of the Fig. 5
(underestimated timeout) and Fig. 6 (partition recovery) contrasts.  The
policies are small value objects so tests can exercise them in isolation and
the benchmark harness can ablate them.
"""

from __future__ import annotations

from ..core.errors import ConfigurationError

#: Growth cap: intervals never exceed ``base * 2 ** _MAX_DOUBLINGS``.
_MAX_DOUBLINGS = 24


class ViewDoublingPolicy:
    """The naive view-doubling synchronizer's duration rule (HotStuff+NS).

    Following Naor et al., the duration of view ``v`` is a function of the
    *view number*: ``base * 2 ** (v - anchor)``, where ``anchor`` is the
    view of the last commit.  Two properties follow directly:

    * **Self-stabilization.**  A replica that fell behind sits in lower
      views, whose durations are *shorter*, so it catches up; view
      synchronization is eventually restored with no communication at all.
      That is the entire synchronizer — hence "naive".
    * **Exponential pathology.**  Until a commit moves the anchor, every
      wasted view doubles the next one.  With an underestimated timeout the
      cluster repeatedly climbs this ladder and can stall for
      ``base * 2 ** k`` at a time (at ``lambda = 150 ms`` a nine-view climb
      is ~77 s — the paper's Fig. 9 shows exactly such a ~75 s plateau), and
      a 60 s partition leaves replicas holding views minutes long (Fig. 6).

    The exponent is capped (default ``2 ** 10``) — every real deployment
    caps its back-off — which also keeps horizon-bounded experiments
    meaningful.
    """

    def __init__(self, base: float, max_doublings: int = 10) -> None:
        if base <= 0:
            raise ConfigurationError("pacemaker base interval must be > 0")
        if not 0 < max_doublings <= _MAX_DOUBLINGS:
            raise ConfigurationError(
                f"max_doublings must be in 1..{_MAX_DOUBLINGS}, got {max_doublings}"
            )
        self.base = float(base)
        self.max_doublings = max_doublings
        self.anchor = 1

    def duration_of(self, view: int) -> float:
        """Timer duration for ``view`` under the current anchor."""
        exponent = min(max(view - self.anchor, 0), self.max_doublings)
        return self.base * (2.0**exponent)

    def on_commit(self, view: int) -> None:
        """A decision was reached in ``view``: re-anchor the ladder there.

        All replicas commit at the same view (it is the same three-chain),
        so the anchor — and with it every future view's duration — stays
        globally consistent without any coordination."""
        self.anchor = max(self.anchor, view)


class AdaptiveTimeoutPolicy:
    """LibraBFT's round-timeout rule.

    Timeouts double on failure like the naive policy, but (a) round
    synchronization itself comes from timeout *certificates*, so replicas
    never drift apart, and (b) on success the interval decays gently
    (halving, floored at the base) instead of snapping back — so a protocol
    running over a slower-than-estimated network settles at a working
    timeout instead of oscillating (the Fig. 5 flatness).
    """

    def __init__(self, base: float, decay: float = 0.5) -> None:
        if base <= 0:
            raise ConfigurationError("pacemaker base interval must be > 0")
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError("decay must be in (0, 1]")
        self.base = float(base)
        self.decay = float(decay)
        self.interval = float(base)

    def on_timeout(self) -> float:
        limit = self.base * (2.0**_MAX_DOUBLINGS)
        self.interval = min(self.interval * 2.0, limit)
        return self.interval

    def on_commit(self) -> float:
        self.interval = max(self.base, self.interval * self.decay)
        return self.interval

    def current(self) -> float:
        return self.interval


class PerNodeDoublingPolicy:
    """Per-node exponential back-off with reset on local progress.

    An alternative naive-synchronizer reading: each replica keeps its own
    consecutive-timeout counter, doubles its interval on every timeout, and
    snaps back to the base whenever *it* observes progress (a QC moving it
    forward, or a commit).  Because the counter is per-node and resets are
    driven by locally-observed events, interval state diverges across
    replicas and the cluster can wander through disjoint view groups for a
    long time — convergence relies on the growth cap and luck.
    """

    def __init__(self, base: float, max_doublings: int = 7) -> None:
        if base <= 0:
            raise ConfigurationError("pacemaker base interval must be > 0")
        self.base = float(base)
        self.max_doublings = max_doublings
        self.doublings = 0

    def current(self) -> float:
        return self.base * (2.0 ** self.doublings)

    def on_timeout(self) -> None:
        self.doublings = min(self.doublings + 1, self.max_doublings)

    def on_progress(self) -> None:
        self.doublings = 0
