"""HotStuff with a naive view-doubling synchronizer (HotStuff+NS).

The paper's HotStuff variant (§III-B5): the chained HotStuff core plus the
PaceMaker the HotStuff paper sketches but never specifies — a *naive
synchronizer* built from exponential back-off, after Naor et al.  On a
local timeout a replica advances one view on its own and tells the new
view's leader (``NEW-VIEW`` carrying its highest QC); the leader may
propose once it collects ``n - f`` such messages.  Nothing else
synchronizes views.

Two formulations of the back-off are provided, selected by
``protocol_params["synchronizer"]``:

``"per-node"`` (default — the naive synchronizer evaluated in the paper)
    Each replica keeps its own consecutive-timeout counter: every timeout
    doubles *its* interval, and any locally-observed progress (a QC moving
    it forward, or a commit) snaps *its* interval back to ``lambda``.
    Because resets are driven by each replica's own observations, interval
    state diverges across the cluster; replicas drift into disjoint view
    groups and can take a long time — potentially forever under sustained
    stress — to re-align.  This divergence is the paper's central HotStuff
    finding: the latency blow-up when ``lambda`` underestimates the real
    delay (Fig. 5), the view-group plateaus of Fig. 9, the ~100 s
    post-partition lag of Fig. 6, and the drastic fail-stop degradation of
    Fig. 7.

``"view-indexed"``
    Naor et al.'s view-doubling formulation: the duration of view ``v`` is
    ``lambda * 2 ** (v - anchor)`` with the anchor at the last committed
    block's view.  Durations are a function of *shared* state, so a replica
    that falls behind sits in shorter views and catches up —
    self-stabilizing, at the cost of long fallback views.  Provided as the
    repaired ablation (see ``benchmarks/bench_ablation_pacemakers.py``).

``protocol_params["max_backoff_doublings"]`` caps the exponent of either
formulation (default 24, i.e. effectively uncapped, matching a truly naive
implementation).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..core.errors import ConfigurationError
from ..core.message import Message
from ..crypto.quorum import QuorumCertificate
from .chained import ChainedHotStuffBase
from .pacemakers import PerNodeDoublingPolicy, ViewDoublingPolicy
from .registry import register_protocol


@register_protocol("hotstuff-ns")
class HotStuffNSNode(ChainedHotStuffBase):
    """One honest HotStuff+NS replica."""

    def __init__(self, node_id: int, env: Any) -> None:
        super().__init__(node_id, env)
        synchronizer = env.protocol_param("synchronizer", "per-node")
        max_doublings = int(env.protocol_param("max_backoff_doublings", 24))
        if synchronizer == "per-node":
            self.policy: PerNodeDoublingPolicy | ViewDoublingPolicy = (
                PerNodeDoublingPolicy(self.lam, max_doublings=max_doublings)
            )
        elif synchronizer == "view-indexed":
            self.policy = ViewDoublingPolicy(self.lam, max_doublings=max_doublings)
        else:
            raise ConfigurationError(
                f"unknown synchronizer {synchronizer!r}; "
                "expected 'per-node' or 'view-indexed'"
            )
        self._synchronizer = synchronizer
        self._newview_senders: dict[int, set[int]] = defaultdict(set)

    # ------------------------------------------------------------------
    # pacemaker
    # ------------------------------------------------------------------

    def pacemaker_interval(self) -> float:
        if isinstance(self.policy, ViewDoublingPolicy):
            return self.policy.duration_of(self.view)
        return self.policy.current()

    def on_local_timeout(self, view: int) -> None:
        """Advance alone and notify the next leader."""
        if isinstance(self.policy, PerNodeDoublingPolicy):
            self.policy.on_timeout()
        next_view = view + 1
        self.advance_to_view(next_view, via="timeout")
        self.send(
            self.leader_of(next_view),
            type="NEW-VIEW",
            view=next_view,
            qc=self.high_qc.to_payload(),
        )

    def on_view_entered(self, view: int, via: str) -> None:
        """Per-node mode treats a QC-driven advance as "network fine again"
        and snaps its own interval back — the uncoordinated reset that lets
        interval state diverge across replicas."""
        if via == "qc" and isinstance(self.policy, PerNodeDoublingPolicy):
            self.policy.on_progress()

    def on_commit(self, view: int) -> None:
        if isinstance(self.policy, PerNodeDoublingPolicy):
            self.policy.on_progress()
        else:
            self.policy.on_commit(view)

    def proposal_ready(self, view: int) -> bool:
        if super().proposal_ready(view):
            return True
        return len(self._newview_senders[view]) >= self.quorum("available")

    # ------------------------------------------------------------------
    # pacemaker messages
    # ------------------------------------------------------------------

    def on_extra_message(self, message: Message) -> None:
        if message.payload.get("type") != "NEW-VIEW":
            return
        payload = message.payload
        view = int(payload["view"])
        qc = QuorumCertificate.from_payload(payload.get("qc"))
        if self.leader_of(view) == self.id:
            self._newview_senders[view].add(message.source)
        self.update_high_qc(qc)
        self._try_propose()
