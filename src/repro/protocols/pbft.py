"""Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI '99).

The classic three-phase, partially-synchronous SMR protocol (paper §III-B4):

* the leader of view ``v`` pre-prepares a value for the current slot;
* replicas broadcast ``PREPARE``; a replica with ``2f+1`` matching prepares
  is *prepared* and broadcasts ``COMMIT``;
* ``2f+1`` matching commits decide the slot.

Liveness under an unreliable network comes from the view-change protocol:
a replica whose view timer expires broadcasts ``VIEW-CHANGE`` for the next
view and **doubles its timeout** — PBFT's classic exponential back-off,
which makes it partially-synchronous-safe.  The new leader collects ``2f+1``
view-change messages, re-proposes the highest prepared value (or a fresh
one) in ``NEW-VIEW``, and the protocol resumes.

Simplifications relative to the full OSDI paper, standard for simulators:
one consensus slot is active at a time (no pipelining/watermarks), and
checkpoint-based garbage collection is unnecessary because slots are decided
strictly in order.  Lagging replicas catch up through the value carried in
``COMMIT`` messages (playing the role of PBFT's state transfer).
"""

from __future__ import annotations

from typing import Any

from ..core.events import TimeEvent
from ..core.message import Message
from ..crypto.quorum import QuorumCertificate, make_qc
from .base import BFTProtocol, PARTIALLY_SYNCHRONOUS, VoteCounter
from .registry import register_protocol

#: Exponent cap for the timeout back-off (keeps arithmetic finite while the
#: horizon cuts truly dead runs off anyway).
_MAX_BACKOFF_EXPONENT = 24


@register_protocol("pbft")
class PBFTNode(BFTProtocol):
    """One honest PBFT replica."""

    network_model = PARTIALLY_SYNCHRONOUS
    responsive = True
    pipelined = False
    supports_recovery = True

    def __init__(self, node_id: int, env: Any) -> None:
        super().__init__(node_id, env)
        self.view = 0
        self.slot = 0
        self.base_view = 0  # view in which the current slot started
        # (view, slot) -> (digest, value) accepted from that view's leader
        self.pre_prepares: dict[tuple[int, int], tuple[str, Any]] = {}
        self.prepare_votes = VoteCounter()  # key: (view, slot, digest)
        self.commit_votes = VoteCounter()  # key: (view, slot, digest)
        self.commit_values: dict[tuple[int, int, str], Any] = {}
        self.viewchange_votes = VoteCounter()  # key: (new_view, slot)
        # (new_view, slot) -> strongest prepared tuple seen in VCs
        self.viewchange_prepared: dict[tuple[int, int], tuple[int, str, Any]] = {}
        self.prepared: dict[int, tuple[int, str, Any]] = {}  # slot -> (view, digest, value)
        self._sent_prepare: set[tuple[int, int]] = set()
        self._sent_commit: set[tuple[int, int]] = set()
        self._sent_viewchange: set[tuple[int, int]] = set()
        self._sent_newview: set[tuple[int, int]] = set()
        self._decided: set[int] = set()
        # slot -> (value, commit certificate): transferable evidence of the
        # decision, served to recovering replicas (see _on_sync_req).
        self._decision_certs: dict[int, tuple[Any, QuorumCertificate]] = {}
        self._catchup: dict[int, tuple[Any, QuorumCertificate]] = {}
        self._timer = None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def leader_of(self, view: int) -> int:
        return view % self.n

    @property
    def is_leader(self) -> bool:
        return self.leader_of(self.view) == self.id

    def _timeout(self) -> float:
        exponent = min(self.view - self.base_view, _MAX_BACKOFF_EXPONENT)
        return self.lam * (2.0**exponent)

    def _restart_timer(self) -> None:
        self.cancel_timer(self._timer)
        self._timer = self.set_timer(
            self._timeout(), "view-timeout", view=self.view, slot=self.slot
        )

    def _digest(self, value: Any) -> str:
        # Block values (see BFTProtocol.proposal_value) are digested by tag:
        # the transaction list is a deterministic function of the tag, so the
        # tag uniquely identifies the block — the simulator-scale stand-in
        # for hashing the transaction list itself.
        if type(value) is dict and "tag" in value:
            return f"d({value['tag']})"
        return f"d({value})"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self.report("view", view=self.view)
        self._enter_slot(0)

    def _enter_slot(self, slot: int) -> None:
        self.slot = slot
        self.base_view = self.view
        self._restart_timer()
        self.phase("pre-prepare", view=self.view, slot=slot)
        if self.is_leader:
            value = self.proposal_value(slot, self.view)
            self.broadcast(
                type="PRE-PREPARE",
                view=self.view,
                slot=slot,
                value=value,
                digest=self._digest(value),
            )
        self._recheck()

    def _enter_view(self, view: int) -> None:
        """Adopt ``view`` (> current) for the current slot."""
        self.view = view
        self.report("view", view=view)
        self._restart_timer()
        self._recheck()

    def on_recover(self) -> None:
        """Rejoin after an environmental crash.

        Protocol state survived (stable storage), but the view timer was
        lost with the crash: replay own decisions, re-arm the timer, ask
        peers for decisions this replica slept through (their COMMIT quorums
        formed while messages to it were being dropped and are never
        retransmitted), and re-evaluate buffered votes.
        """
        super().on_recover()
        self.broadcast(type="SYNC-REQ", slot=self.slot)
        self._restart_timer()
        self._recheck()

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload.get("type")
        if kind == "PRE-PREPARE":
            self._on_pre_prepare(message)
        elif kind == "PREPARE":
            self._on_prepare(message)
        elif kind == "COMMIT":
            self._on_commit(message)
        elif kind == "VIEW-CHANGE":
            self._on_view_change(message)
        elif kind == "NEW-VIEW":
            self._on_new_view(message)
        elif kind == "SYNC-REQ":
            self._on_sync_req(message)
        elif kind == "DECIDED":
            self._on_decided(message)
        # Unknown kinds are ignored: Byzantine senders may emit garbage.

    # The three hot handlers below run targeted rechecks instead of the full
    # ``_recheck``.  This is behavior-preserving, not an approximation: the
    # replica's state between events is a fixed point of every non-firing
    # ``_try_*`` rule with respect to that rule's read set (each rule ran
    # after the previous event and declined), so only rules whose read set
    # the handler just wrote can newly fire.  PREPARE writes
    # ``prepare_votes`` (read only by ``_try_commit``); COMMIT writes
    # ``commit_votes``/``commit_values`` (read only by ``_try_decide``);
    # PRE-PREPARE writes ``pre_prepares`` (read by prepare/commit/decide).
    # Rare paths (view changes, timers, slot entry, recovery) keep the full
    # sweep.

    def _on_pre_prepare(self, message: Message) -> None:
        payload = message.payload
        view, slot = int(payload["view"]), int(payload["slot"])
        if message.source != self.leader_of(view):
            return  # only the view's leader may pre-prepare
        key = (view, slot)
        if key in self.pre_prepares:
            return  # equivocation: first accepted pre-prepare wins
        digest, value = str(payload["digest"]), payload["value"]
        if digest != self._digest(value):
            return
        self.pre_prepares[key] = (digest, value)
        if self.slot not in self._decided:
            self._try_prepare()
            self._try_commit()
            self._try_decide()

    def _on_prepare(self, message: Message) -> None:
        payload = message.payload
        key = (int(payload["view"]), int(payload["slot"]), str(payload["digest"]))
        self.prepare_votes.add(key, message.source)
        # Inline the two cheap disqualifiers (_try_commit re-checks them,
        # but most post-quorum PREPARE arrivals exit right here).
        if self.slot not in self._decided and (
            (self.view, self.slot) not in self._sent_commit
        ):
            self._try_commit()

    def _on_commit(self, message: Message) -> None:
        payload = message.payload
        key = (int(payload["view"]), int(payload["slot"]), str(payload["digest"]))
        self.commit_votes.add(key, message.source)
        value = payload.get("value")
        # Membership first: the digest check (which stringifies the value)
        # only needs to run for the first matching COMMIT of each key.
        if (
            value is not None
            and key not in self.commit_values
            and self._digest(value) == key[2]
        ):
            self.commit_values[key] = value
        if self.slot not in self._decided:
            self._try_decide()

    def _on_view_change(self, message: Message) -> None:
        payload = message.payload
        new_view, slot = int(payload["new_view"]), int(payload["slot"])
        key = (new_view, slot)
        self.viewchange_votes.add(key, message.source)
        prepared = payload.get("prepared")
        if prepared is not None:
            candidate = (int(prepared["view"]), str(prepared["digest"]), prepared["value"])
            best = self.viewchange_prepared.get(key)
            if best is None or candidate[0] > best[0]:
                self.viewchange_prepared[key] = candidate
        self._recheck()

    def _on_new_view(self, message: Message) -> None:
        payload = message.payload
        view, slot = int(payload["view"]), int(payload["slot"])
        if message.source != self.leader_of(view):
            return
        if slot != self.slot or view < self.view:
            return
        digest, value = str(payload["digest"]), payload["value"]
        if digest != self._digest(value):
            return
        self.pre_prepares.setdefault((view, slot), (digest, value))
        if view > self.view:
            self._enter_view(view)
        else:
            self._recheck()

    # ------------------------------------------------------------------
    # crash-recovery catch-up
    # ------------------------------------------------------------------

    def _on_sync_req(self, message: Message) -> None:
        """A recovered replica asked for decisions from ``slot`` onward:
        answer with one DECIDED per slot, each carrying the commit
        certificate so the receiver need not trust this replica."""
        since = int(message.payload.get("slot", 0))
        for slot in sorted(self._decision_certs):
            if slot < since:
                continue
            value, cert = self._decision_certs[slot]
            self.send(
                message.source,
                type="DECIDED",
                slot=slot,
                value=value,
                cert=cert.to_payload(),
            )

    def _on_decided(self, message: Message) -> None:
        """Adopt a transferred decision once its commit certificate checks
        out (a quorum of distinct signers over the value's digest — the same
        trust level as the commit quorum it summarizes)."""
        payload = message.payload
        slot, value = int(payload["slot"]), payload["value"]
        cert = QuorumCertificate.from_payload(payload.get("cert"))
        if cert is None or not cert.valid(self.quorum()):
            return
        if cert.ref != self._digest(value):
            return
        self._catchup.setdefault(slot, (value, cert))
        while self.slot in self._catchup and self.slot not in self._decided:
            adopted, adopted_cert = self._catchup[self.slot]
            self._decide(self.slot, adopted, adopted_cert.view, adopted_cert.signers)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def on_timer(self, timer: TimeEvent) -> None:
        if timer.name != "view-timeout":
            return
        data = timer.data or {}
        if data.get("view") != self.view or data.get("slot") != self.slot:
            return  # stale timer from a view/slot we already left
        if self.slot in self._decided:
            return
        self._start_view_change(self.view + 1)

    def _start_view_change(self, new_view: int) -> None:
        key = (new_view, self.slot)
        if key in self._sent_viewchange:
            return
        self._sent_viewchange.add(key)
        self.view = new_view
        self.report("view", view=new_view)
        self.phase("view-change", view=new_view, slot=self.slot)
        prepared = self.prepared.get(self.slot)
        self.broadcast(
            type="VIEW-CHANGE",
            new_view=new_view,
            slot=self.slot,
            prepared=(
                {"view": prepared[0], "digest": prepared[1], "value": prepared[2]}
                if prepared
                else None
            ),
        )
        self._restart_timer()
        self._recheck()

    # ------------------------------------------------------------------
    # state machine: act whenever a threshold may have been crossed
    # ------------------------------------------------------------------

    def _recheck(self) -> None:
        if self.slot in self._decided:
            return
        self._try_prepare()
        self._try_commit()
        self._try_decide()
        self._try_new_view()
        self._try_join_view_change()

    def _try_prepare(self) -> None:
        key = (self.view, self.slot)
        if key in self._sent_prepare or key not in self.pre_prepares:
            return
        digest, _value = self.pre_prepares[key]
        self._sent_prepare.add(key)
        self.broadcast(type="PREPARE", view=self.view, slot=self.slot, digest=digest)
        self.phase("prepare", view=self.view, slot=self.slot)

    def _try_commit(self) -> None:
        key = (self.view, self.slot)
        if key in self._sent_commit or key not in self.pre_prepares:
            return
        digest, value = self.pre_prepares[key]
        if self.prepare_votes.count((self.view, self.slot, digest)) < self.quorum():
            return
        self._sent_commit.add(key)
        self.prepared[self.slot] = (self.view, digest, value)
        self.broadcast(
            type="COMMIT", view=self.view, slot=self.slot, digest=digest, value=value
        )
        self.phase("commit", view=self.view, slot=self.slot)

    def _try_decide(self) -> None:
        """Decide from any view's commit quorum for the current slot.

        Accepting a quorum formed in a view other than our own lets lagging
        replicas (stuck one view ahead after an aborted view change) adopt
        the decision — the simulator-scale stand-in for PBFT state transfer.
        """
        for key in self.commit_votes.keys():  # keys() is already a fresh list
            view, slot, digest = key
            if slot != self.slot:
                continue
            if self.commit_votes.count(key) < self.quorum():
                continue
            value = self.commit_values.get(key)
            if value is None:
                pre = self.pre_prepares.get((view, slot))
                if pre is None or pre[0] != digest:
                    continue
                value = pre[1]
            self._decide(slot, value, view, self.commit_votes.voters(key))
            return

    def _decide(self, slot: int, value: Any, view: int, voters: frozenset[int]) -> None:
        self._decided.add(slot)
        self._decision_certs[slot] = (value, make_qc(view, self._digest(value), voters))
        self.cancel_timer(self._timer)
        if view > self.view:
            self.view = view
            self.report("view", view=view)
        elif view < self.view:
            # Converge back to the view the quorum is actually operating in.
            self.view = view
            self.report("view", view=view)
        self.decide(slot, value)
        self._enter_slot(slot + 1)

    def _try_new_view(self) -> None:
        """As leader-elect, assemble NEW-VIEW from 2f+1 view changes."""
        key = (self.view, self.slot)
        if self.leader_of(self.view) != self.id or key in self._sent_newview:
            return
        if self.view == self.base_view:
            return  # not a view change; the slot's original leader pre-prepares
        if self.viewchange_votes.count(key) < self.quorum():
            return
        self._sent_newview.add(key)
        prepared = self.viewchange_prepared.get(key)
        if prepared is not None:
            _view, digest, value = prepared
        else:
            value = self.proposal_value(self.slot, self.view)
            digest = self._digest(value)
        self.pre_prepares.setdefault((self.view, self.slot), (digest, value))
        self.broadcast(
            type="NEW-VIEW", view=self.view, slot=self.slot, value=value, digest=digest
        )

    def _try_join_view_change(self) -> None:
        """Join a view change once f+1 replicas vouch for a higher view.

        Guarantees an honest replica cannot be left behind by a view change
        it did not time out for (PBFT's weak-certificate rule)."""
        for key in list(self.viewchange_votes.keys()):
            new_view, slot = key
            if slot != self.slot or new_view <= self.view:
                continue
            if self.viewchange_votes.count(key) >= self.f + 1:
                self._start_view_change(new_view)
                return
