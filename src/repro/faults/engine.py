"""The fault injector: applies link-level fault processes to messages.

The :class:`FaultInjector` sits between the attacker module and delivery
scheduling inside :class:`~repro.network.module.NetworkModule`: every
message that survives the attacker passes through the active fault schedule
before its delivery event is registered.  Node crash/recovery faults are
*not* handled here — the controller schedules those as timed lifecycle
events (see :mod:`repro.core.controller`).

Determinism: each fault process draws from its own substream named
``faults.<index>`` (index = the spec's position in the schedule), and
duplicate copies sample their independent delay from a dedicated
``faults.delay`` stream.  Fault draws therefore never perturb the network
delay stream, and reordering unrelated specs does not change the draws an
unchanged spec sees.
"""

from __future__ import annotations

import copy
import random
from typing import TYPE_CHECKING, Callable

from ..core.config import LINK_FAULT_KINDS, FaultScheduleConfig, NetworkConfig
from ..core.message import Message
from ..core.rng import RandomSource
from ..network.delays import DelayModel
from ..observability.logging import SimLogger, get_logger

if TYPE_CHECKING:  # pragma: no cover
    from ..core.metrics import MetricsCollector
    from ..core.tracing import Trace


class FaultInjector:
    """Applies the link-level fault processes of a schedule to messages.

    Args:
        schedule: the run's declarative fault schedule.
        random_source: the run's root random source; the injector derives
            its own substreams and never touches existing ones.
        network_config: network parameters, used to sample independent
            delays for duplicated messages.
        metrics: the run's collector; fault events increment
            ``metrics.faults`` (a :class:`~repro.core.metrics.FaultCounts`),
            never the attacker-facing ``MessageCounts``.
        trace: the run's trace; fault events are recorded with ``env-*``
            kinds so traces keep the attacker-vs-environment boundary.
        next_message_id: the controller's per-run message id allocator,
            used to key duplicated copies.
    """

    def __init__(
        self,
        schedule: FaultScheduleConfig,
        random_source: RandomSource,
        network_config: NetworkConfig,
        metrics: "MetricsCollector",
        trace: "Trace",
        next_message_id: Callable[[], int],
    ) -> None:
        self.schedule = schedule
        self._metrics = metrics
        self._trace = trace
        self._next_message_id = next_message_id
        self._link_specs = [
            (index, spec)
            for index, spec in enumerate(schedule.specs)
            if spec.kind in LINK_FAULT_KINDS
        ]
        self._rngs: dict[int, random.Random] = {
            index: random_source.python(f"faults.{index}")
            for index, _spec in self._link_specs
        }
        # Hot-path bindings: one (spec, bound rng.random) pair per process so
        # ``apply`` touches no dict lookups per message.  The substreams and
        # their draw order are exactly the ones in ``_rngs``.
        self._active = [
            (spec, self._rngs[index].random) for index, spec in self._link_specs
        ]
        self._fault_counts = metrics.faults
        self._dup_delays = DelayModel(
            network_config, random_source.numpy("faults.delay")
        )
        self.log = SimLogger(get_logger("faults"))

    def active(self) -> bool:
        """True when any link-level fault process is configured."""
        return bool(self._link_specs)

    def apply(self, message: Message) -> list[Message]:
        """Run ``message`` through the fault schedule.

        Returns the messages to actually schedule for delivery: the original
        (possibly re-timed or flagged corrupted), any duplicate copies, or
        nothing at all when a loss/link-down process dropped it.  Specs are
        applied in schedule order; a drop ends processing for the original,
        but duplicates already created stay in flight (they are independent
        packets).  Duplicate copies are not re-processed.
        """
        faults = self._fault_counts
        duplicates: list[Message] = []
        alive = True
        sent_at = message.sent_at
        # Link faults are physical: a dissemination hop travels the
        # relay->dest link, not origin->dest, so spec matching uses the
        # transmitting node when one is recorded.
        src = message.relay_from
        if src is None:
            src = message.source
        for spec, draw in self._active:
            if not spec.in_window(sent_at):
                continue
            if not spec.matches_link(src, message.dest):
                continue
            if spec.kind == "link-down":
                faults.link_down += 1
                self._record("env-drop", message, fault="link-down")
                alive = False
                break
            if draw() >= spec.rate:
                continue
            if spec.kind == "loss":
                faults.lost += 1
                self._record("env-drop", message, fault="loss")
                alive = False
                break
            if spec.kind == "duplicate":
                duplicates.append(self._duplicate(message))
            elif spec.kind == "corrupt":
                if not message.corrupted:
                    faults.corrupted += 1
                    self._record("env-corrupt", message)
                message.corrupted = True
            elif spec.kind == "delay":
                assert message.delay is not None
                message.delay = message.delay * spec.factor
                faults.delayed += 1
                self._record("env-delay", message, factor=spec.factor)
        return duplicates + [message] if alive else duplicates

    # -- internals ----------------------------------------------------------

    def _duplicate(self, message: Message) -> Message:
        """An independent in-flight copy with its own delay and id."""
        dup = Message(
            source=message.source,
            dest=message.dest,
            payload=copy.deepcopy(message.payload),
            sent_at=message.sent_at,
            delay=self._dup_delays.sample_delay(message.sent_at),
            msg_id=self._next_message_id(),
            forged=message.forged,
            corrupted=message.corrupted,
        )
        dup.relay_from = message.relay_from
        dup.cause = message.cause
        self._metrics.faults.duplicated += 1
        self._record("env-dup", dup, original=message.msg_id)
        return dup

    def _record(self, kind: str, message: Message, **fields: object) -> None:
        self._trace.record(
            message.sent_at, kind, message.source,
            dest=message.dest, msg_type=message.type, msg_id=message.msg_id,
            **fields,
        )
        self.log.debug(
            kind, sim_time=message.sent_at,
            source=message.source, dest=message.dest,
            msg_type=message.type, msg_id=message.msg_id, **fields,
        )
