"""Environmental faults: declarative, seed-deterministic benign failures.

The attacker module (:mod:`repro.attacks`) models an *adversary* with
declared capabilities; this package models the *environment* — lossy links,
duplicated packets, bit-flipped payloads, flaky links going down and up,
and nodes crashing and recovering.  The two compose: an attack scenario can
run on top of a fault schedule, and environmental effects are never charged
against the attacker's capabilities or corruption budget.

Faults are declared as data (:class:`~repro.core.config.FaultSpec` entries
in ``SimulationConfig.faults``) or as a compact CLI string parsed by
:func:`parse_faults_spec`::

    loss=0.1; delay=0.2x5; crash=3@1000:8000

Every fault process draws from its own named random substream
(``faults.<index>``), so identical configurations produce byte-identical
results at any parallelism, and adding fault processes never perturbs the
network's delay stream.
"""

from ..core.config import FAULT_KINDS, FaultScheduleConfig, FaultSpec
from .engine import FaultInjector
from .presets import available_presets, get_preset, register_preset
from .spec import parse_faults_spec

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultScheduleConfig",
    "FaultSpec",
    "available_presets",
    "get_preset",
    "parse_faults_spec",
    "register_preset",
]
