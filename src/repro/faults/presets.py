"""Named fault-schedule presets.

A preset is a reusable bundle of :class:`~repro.core.config.FaultSpec`
entries registered under a short name, usable anywhere a fault clause is —
``--faults unreliable-network`` on the CLI, or ``get_preset(...)``
programmatically.  Presets return fresh spec objects on every lookup, so
callers may re-window or otherwise mutate them freely.
"""

from __future__ import annotations

from typing import Callable

from ..core.config import FaultSpec
from ..core.errors import ConfigurationError

_PRESETS: dict[str, Callable[[], list[FaultSpec]]] = {}


def register_preset(name: str, factory: Callable[[], list[FaultSpec]]) -> None:
    """Register ``factory`` under ``name`` (overwrites silently, as with
    protocol/attacker registries)."""
    _PRESETS[name] = factory


def get_preset(name: str) -> list[FaultSpec]:
    """Fresh fault specs for preset ``name``.

    Raises:
        ConfigurationError: unknown preset.
    """
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault preset {name!r}; available: {available_presets()}"
        ) from None
    return factory()


def available_presets() -> list[str]:
    """Registered preset names, sorted."""
    return sorted(_PRESETS)


# ---------------------------------------------------------------------------
# Built-in presets
# ---------------------------------------------------------------------------

# The semantics the chaos fuzzing suite exercised via its ad-hoc test-chaos
# attacker, promoted to a first-class environment: 10% loss, 20% of
# messages re-timed by a factor of 5.
register_preset(
    "unreliable-network",
    lambda: [
        FaultSpec(kind="loss", rate=0.1),
        FaultSpec(kind="delay", rate=0.2, factor=5.0),
    ],
)

# Pure packet loss, the textbook fair-lossy link.
register_preset(
    "lossy-network",
    lambda: [FaultSpec(kind="loss", rate=0.1)],
)

# Low-grade background noise on every link: occasional loss, duplication,
# and payload corruption.
register_preset(
    "noisy-network",
    lambda: [
        FaultSpec(kind="loss", rate=0.05),
        FaultSpec(kind="duplicate", rate=0.05),
        FaultSpec(kind="corrupt", rate=0.02),
    ],
)
