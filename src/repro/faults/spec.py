"""Compact CLI grammar for fault schedules.

:func:`parse_faults_spec` turns the ``--faults`` command-line string into a
:class:`~repro.core.config.FaultScheduleConfig`.  The grammar is a
``;``-separated list of clauses, each ``kind[=arg][@start:end]``::

    loss=0.1                    drop 10% of messages
    duplicate=0.05              deliver an extra copy of 5% of messages
    corrupt=0.02                tamper 2% of payloads (receivers reject them)
    delay=0.2x5                 re-time 20% of messages by a factor of 5
    link-down@1000:2500         drop everything in the window [1000, 2500) ms
    crash=3@1000:8000           crash node 3 at 1000 ms, recover at 8000 ms
    crash=3@1000                crash node 3 at 1000 ms, permanently

A window ``@start:end`` can be attached to any clause; ``@start`` and
``@start:`` leave the end open.  A bare clause that is not a fault kind
names a registered preset (see :mod:`repro.faults.presets`), optionally
windowed — ``unreliable-network@0:5000`` confines the whole preset to the
first five simulated seconds.

Clauses compose: ``"loss=0.05; delay=0.1x3; crash=0@2000:6000"`` is a
three-process schedule.  Validation beyond the grammar (rates in range,
crash targets in ``range(n)``) happens in ``FaultSpec.validate`` when the
schedule joins a :class:`~repro.core.config.SimulationConfig`.
"""

from __future__ import annotations

from ..core.config import FAULT_KINDS, FaultScheduleConfig, FaultSpec
from ..core.errors import ConfigurationError
from .presets import get_preset


def parse_faults_spec(text: str) -> FaultScheduleConfig:
    """Parse a ``--faults`` string into a fault schedule.

    Raises:
        ConfigurationError: on any grammar violation, with the offending
            clause named.
    """
    specs: list[FaultSpec] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        specs.extend(_parse_clause(clause))
    return FaultScheduleConfig(specs=specs)


def _parse_clause(clause: str) -> list[FaultSpec]:
    head, window = _split_window(clause)
    start, end = window
    kind, sep, arg = head.partition("=")
    kind = kind.strip()
    arg = arg.strip()

    if kind not in FAULT_KINDS:
        if sep:
            raise ConfigurationError(
                f"unknown fault kind {kind!r} in clause {clause!r}; "
                f"available: {list(FAULT_KINDS)} or a preset name"
            )
        return _windowed_preset(kind, start, end)

    if kind == "link-down":
        if sep:
            raise ConfigurationError(
                f"link-down takes no argument, got {clause!r} "
                "(use a window, e.g. link-down@1000:2500)"
            )
        return [FaultSpec(kind="link-down", start=start, end=end)]

    if not sep or not arg:
        raise ConfigurationError(
            f"fault clause {clause!r} needs an argument, e.g. {kind}=0.1"
        )

    if kind == "crash":
        return [FaultSpec(kind="crash", node=_parse_int(arg, clause), start=start, end=end)]

    if kind == "delay":
        rate_s, x, factor_s = arg.partition("x")
        if not x or not factor_s:
            raise ConfigurationError(
                f"delay fault needs rate and factor, e.g. delay=0.2x5; got {clause!r}"
            )
        return [
            FaultSpec(
                kind="delay",
                rate=_parse_float(rate_s, clause),
                factor=_parse_float(factor_s, clause),
                start=start,
                end=end,
            )
        ]

    # loss / duplicate / corrupt: the argument is the per-message rate.
    return [FaultSpec(kind=kind, rate=_parse_float(arg, clause), start=start, end=end)]


def _split_window(clause: str) -> tuple[str, tuple[float, float | None]]:
    if "@" not in clause:
        return clause, (0.0, None)
    head, _, window = clause.partition("@")
    start_s, sep, end_s = window.partition(":")
    try:
        start = float(start_s) if start_s.strip() else 0.0
        end = float(end_s) if sep and end_s.strip() else None
    except ValueError:
        raise ConfigurationError(
            f"bad fault window {window!r} in clause {clause!r}; "
            "expected @start, @start:, or @start:end"
        ) from None
    return head.strip(), (start, end)


def _windowed_preset(name: str, start: float, end: float | None) -> list[FaultSpec]:
    specs = get_preset(name)
    if start != 0.0 or end is not None:
        for spec in specs:
            spec.start = start
            spec.end = end
    return specs


def _parse_float(text: str, clause: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"bad number {text!r} in fault clause {clause!r}"
        ) from None


def _parse_int(text: str, clause: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"bad node id {text!r} in fault clause {clause!r}"
        ) from None
