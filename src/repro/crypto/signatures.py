"""Simulated digital signatures.

The simulator does not measure cryptographic cost (paper §III-A3), so
signatures only need the *information-flow* property: a signature over a
statement by an honest node cannot be fabricated.  Structurally, the
attacker framework already enforces this (``forge`` rejects honest
sources); this module additionally provides deterministic signature *tags*
so protocols can embed transferable proofs — e.g. PBFT view-change messages
carrying prepared certificates — and validate them on receipt.

Tags are keyed SHA-256 digests.  They are deterministic functions of
``(root seed, signer, statement)``, so two replicas independently verify
the same tag, and tests can assert byte-exact traces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any


def canonical(statement: Any) -> str:
    """Stable string form of a statement (JSON with sorted keys; falls back
    to ``repr`` for non-JSON values)."""
    try:
        return json.dumps(statement, sort_keys=True, default=repr)
    except (TypeError, ValueError):
        return repr(statement)


@dataclass(frozen=True)
class Signature:
    """A signature tag over ``statement`` by ``signer``."""

    signer: int
    tag: str

    def to_dict(self) -> dict[str, Any]:
        return {"signer": self.signer, "tag": self.tag}


class SignatureScheme:
    """A per-simulation signing authority.

    Args:
        seed: the simulation's root seed; incorporating it keeps tags unique
            per run while staying deterministic.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    def _digest(self, signer: int, statement: Any) -> str:
        payload = f"{self._seed}|{signer}|{canonical(statement)}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def sign(self, signer: int, statement: Any) -> Signature:
        """Produce ``signer``'s signature over ``statement``."""
        return Signature(signer=signer, tag=self._digest(signer, statement))

    def verify(self, signature: Signature, statement: Any) -> bool:
        """Check a signature tag against a statement."""
        return signature.tag == self._digest(signature.signer, statement)

    def digest(self, statement: Any) -> str:
        """An unkeyed content digest (message/block hashes)."""
        return hashlib.sha256(canonical(statement).encode()).hexdigest()[:16]
