"""Simulated verifiable random function (VRF).

ADD+v2/v3 and Algorand elect leaders with VRFs: each node evaluates a
keyed pseudorandom function on the round number; the output is unpredictable
to anyone without the node's secret key yet publicly verifiable once
revealed, alongside a proof.

The stand-in preserves exactly those properties inside the simulation:

* **Determinism / verifiability** — outputs are SHA-256 of
  ``(simulation seed, node id, input)``, so any replica can verify a
  revealed ``(value, proof)`` pair.
* **Unpredictability to a static attacker** — the attack framework never
  hands attackers a :class:`VRFSecretKey` of an honest node, and
  :meth:`VRFOracle.evaluate` requires one.  A *rushing* attacker learns
  outputs the legitimate way: by observing reveal messages in flight —
  which is precisely the gap between ADD+v2 and ADD+v3 (paper Fig. 8).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

#: Output range of the VRF (64-bit values).
VRF_RANGE: int = 1 << 64


@dataclass(frozen=True)
class VRFSecretKey:
    """Capability object: whoever holds it may evaluate node's VRF."""

    node: int
    material: str


@dataclass(frozen=True)
class VRFOutput:
    """A revealed VRF evaluation: ``value`` plus transferable ``proof``."""

    node: int
    input: str
    value: int
    proof: str

    def to_payload(self) -> dict[str, Any]:
        """Wire form for embedding in message payloads."""
        return {
            "node": self.node,
            "input": self.input,
            "value": self.value,
            "proof": self.proof,
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "VRFOutput":
        return cls(
            node=int(data["node"]),
            input=str(data["input"]),
            value=int(data["value"]),
            proof=str(data["proof"]),
        )


class VRFOracle:
    """Per-simulation VRF authority.

    One oracle instance is shared by all replicas of a run (same ``seed``),
    which models a correctly set-up PKI: everyone can verify, only key
    holders can evaluate.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    def keygen(self, node: int) -> VRFSecretKey:
        """Derive ``node``'s secret key (called by the node itself)."""
        material = hashlib.sha256(f"vrf-key|{self._seed}|{node}".encode()).hexdigest()
        return VRFSecretKey(node=node, material=material)

    def _raw(self, node: int, input_: str) -> tuple[int, str]:
        digest = hashlib.sha256(f"vrf|{self._seed}|{node}|{input_}".encode())
        value = int.from_bytes(digest.digest()[:8], "big")
        proof = digest.hexdigest()[:16]
        return value, proof

    def evaluate(self, key: VRFSecretKey, input_: Any) -> VRFOutput:
        """Evaluate the VRF; requires the evaluator's secret key."""
        if not isinstance(key, VRFSecretKey):
            raise TypeError("VRF evaluation requires the node's VRFSecretKey")
        value, proof = self._raw(key.node, str(input_))
        return VRFOutput(node=key.node, input=str(input_), value=value, proof=proof)

    def verify(self, output: VRFOutput) -> bool:
        """Publicly verify a revealed output/proof pair."""
        value, proof = self._raw(output.node, output.input)
        return value == output.value and proof == output.proof
