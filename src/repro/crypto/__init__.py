"""Simulated cryptographic primitives (information-flow faithful stand-ins)."""

from .common_coin import CommonCoin
from .quorum import GENESIS_QC, QuorumCertificate, make_qc, make_tc
from .signatures import Signature, SignatureScheme, canonical
from .vrf import VRF_RANGE, VRFOracle, VRFOutput, VRFSecretKey

__all__ = [
    "CommonCoin", "GENESIS_QC", "QuorumCertificate", "Signature",
    "SignatureScheme", "VRFOracle", "VRFOutput", "VRFSecretKey",
    "VRF_RANGE", "canonical", "make_qc", "make_tc",
]
