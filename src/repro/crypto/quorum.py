"""Quorum certificates.

HotStuff-family protocols carry *quorum certificates* (QCs): transferable
evidence that a quorum of replicas voted for a statement.  LibraBFT adds
*timeout certificates* (TCs) with the same structure.  The simulator's QC is
a frozen value object — once built from a vote set, it can be embedded in
payloads, compared, and validated by any replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class QuorumCertificate:
    """Evidence that ``signers`` (a quorum) endorsed ``(kind, view, ref)``.

    Attributes:
        kind: certificate family — ``"qc"`` for vote certificates,
            ``"tc"`` for timeout certificates.
        view: the view/round the votes belong to.
        ref: what was endorsed (a block digest for QCs; ``None`` for TCs).
        signers: distinct voter ids.
    """

    kind: str
    view: int
    ref: str | None
    signers: frozenset[int]

    def valid(self, threshold: int) -> bool:
        """True when the certificate carries at least ``threshold`` distinct
        signers."""
        return len(self.signers) >= threshold

    def to_payload(self) -> dict[str, Any]:
        """Wire form for embedding in message payloads."""
        return {
            "kind": self.kind,
            "view": self.view,
            "ref": self.ref,
            "signers": sorted(self.signers),
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any] | None) -> "QuorumCertificate | None":
        if data is None:
            return None
        return cls(
            kind=str(data["kind"]),
            view=int(data["view"]),
            ref=data["ref"],
            signers=frozenset(int(s) for s in data["signers"]),
        )


#: The genesis QC every HotStuff-family replica starts from.
GENESIS_QC = QuorumCertificate(kind="qc", view=0, ref="genesis", signers=frozenset())


def make_qc(view: int, ref: str, signers: set[int] | frozenset[int]) -> QuorumCertificate:
    """Build a vote certificate."""
    return QuorumCertificate(kind="qc", view=view, ref=ref, signers=frozenset(signers))


def make_tc(view: int, signers: set[int] | frozenset[int]) -> QuorumCertificate:
    """Build a timeout certificate (LibraBFT pacemaker)."""
    return QuorumCertificate(kind="tc", view=view, ref=None, signers=frozenset(signers))
