"""Simulated common coin.

Asynchronous BFT protocols escape the FLP impossibility with shared
randomness: a *common coin* all honest nodes observe identically per round,
unpredictable in advance.  Real systems build it from threshold signatures
(e.g. Cachin et al.'s "Random oracles in Constantinople"); the simulation
only needs the interface properties — per-round agreement, uniformity, and
determinism under the run's seed.
"""

from __future__ import annotations

import hashlib


class CommonCoin:
    """A per-simulation shared coin.

    Every replica constructs the coin from the same simulation seed, so all
    observe identical flips — the "trusted dealer" setup assumption of
    coin-based asynchronous BA.
    """

    def __init__(self, seed: int = 0, instance: str = "coin") -> None:
        self._seed = int(seed)
        self._instance = instance

    def flip(self, round_: int) -> int:
        """The round's coin value, a fair bit in ``{0, 1}``."""
        digest = hashlib.sha256(
            f"{self._instance}|{self._seed}|{round_}".encode()
        ).digest()
        return digest[0] & 1

    def value(self, round_: int, modulus: int) -> int:
        """A shared uniform value in ``range(modulus)`` for ``round_``
        (used e.g. for fallback leader election)."""
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        digest = hashlib.sha256(
            f"{self._instance}|{self._seed}|{round_}|wide".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % modulus
