"""The sqlite-backed experiment repository.

Every run of the simulator is a deterministic function of its configuration,
which makes stored results *reproducible claims*: a row that records the
configuration JSON, the seed, and the ``result_fingerprint`` is enough to
re-run the experiment anywhere and byte-compare the outcome.  The
:class:`ExperimentStore` persists exactly that — plus the decision/latency
metrics, fault/stall diagnostics, profile and signals summaries, and
pointers to on-disk JSONL traces and mining artifacts — so results survive
the process that produced them and can be listed, diffed, and browsed later
(``repro experiments``, ``repro serve``).

Design rules:

* **Opt-in and fingerprint-neutral.**  Recording happens strictly *after* a
  run completes, from the result object; the engine never sees the store.
  Attaching a store changes no RNG draw and no result field — the golden
  digests are byte-identical with and without it (a dedicated test runs the
  golden configurations through a recorder and compares).
* **Stdlib only.**  ``sqlite3`` ships with CPython; there is no ORM, no
  migration framework — one schema version, checked on open, rejected on
  mismatch (:class:`StoreSchemaError`) rather than silently migrated.
* **Concurrent-writer safe.**  The store serializes its own writes behind a
  lock and opens sqlite in WAL mode with a busy timeout, so several
  runners/threads (e.g. two ``ParallelRunner`` fleets) can record into one
  file; progress counters are updated in the same transaction as the run
  row, so a dashboard poll never observes a half-recorded run.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable

from ..core.config import SimulationConfig
from ..core.errors import SimulationError
from ..core.results import (
    RunFailure,
    SimulationResult,
    result_fingerprint,
)

#: Current on-disk schema version.  Bump on any incompatible change; the
#: store refuses files written by other versions instead of guessing.
#: v2: throughput columns (committed_tx_s, requests_submitted,
#: requests_decided, saturated, workload_json) for workload runs.
#: v3: run-health columns (health_json, anomaly_count, min_fairness) for
#: runs recorded with the streaming HealthMonitor enabled.
SCHEMA_VERSION = 3

#: Experiment lifecycle states.
EXPERIMENT_STATUSES = ("running", "complete", "failed")


class StoreError(SimulationError):
    """The experiment store was misused or the file is not a store."""


class StoreSchemaError(StoreError):
    """The store file was written by an incompatible schema version."""


_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS experiments (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    name         TEXT NOT NULL,
    kind         TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'running',
    created_at   REAL NOT NULL,
    finished_at  REAL,
    config_json  TEXT NOT NULL,
    params_json  TEXT NOT NULL DEFAULT '{}',
    total_runs   INTEGER NOT NULL DEFAULT 0,
    done_runs    INTEGER NOT NULL DEFAULT 0,
    failed_runs  INTEGER NOT NULL DEFAULT 0,
    stalled_runs INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS runs (
    id                   INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment_id        INTEGER NOT NULL REFERENCES experiments(id),
    run_index            INTEGER NOT NULL,
    label                TEXT NOT NULL DEFAULT '',
    status               TEXT NOT NULL,
    seed                 INTEGER NOT NULL,
    protocol             TEXT NOT NULL,
    config_json          TEXT NOT NULL,
    fingerprint          TEXT,
    terminated           INTEGER,
    stalled              INTEGER NOT NULL DEFAULT 0,
    latency              REAL,
    latency_per_decision REAL,
    messages             INTEGER,
    messages_per_decision REAL,
    events_processed     INTEGER,
    max_view             INTEGER,
    wall_clock_seconds   REAL,
    fault_counts_json    TEXT,
    stall_json           TEXT,
    profile_json         TEXT,
    metrics_json         TEXT,
    signals_json         TEXT,
    failure_json         TEXT,
    trace_path           TEXT,
    committed_tx_s       REAL,
    requests_submitted   INTEGER,
    requests_decided     INTEGER,
    saturated            INTEGER,
    workload_json        TEXT,
    health_json          TEXT,
    anomaly_count        INTEGER,
    min_fairness         REAL,
    UNIQUE (experiment_id, run_index)
);
CREATE INDEX IF NOT EXISTS idx_runs_experiment ON runs(experiment_id);
CREATE TABLE IF NOT EXISTS artifacts (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment_id INTEGER NOT NULL REFERENCES experiments(id),
    kind          TEXT NOT NULL,
    name          TEXT NOT NULL DEFAULT '',
    path          TEXT,
    payload_json  TEXT
);
CREATE INDEX IF NOT EXISTS idx_artifacts_experiment ON artifacts(experiment_id);
"""


def _json(value: Any) -> str | None:
    """Compact sorted JSON, or ``None`` for ``None`` (SQL NULL)."""
    if value is None:
        return None
    return json.dumps(value, sort_keys=True, default=repr)


def _loads(text: str | None) -> Any:
    return None if text is None else json.loads(text)


@dataclass(frozen=True)
class ExperimentRow:
    """One stored experiment (a batch of runs recorded together)."""

    id: int
    name: str
    kind: str
    status: str
    created_at: float
    finished_at: float | None
    config: dict[str, Any]
    params: dict[str, Any]
    total_runs: int
    done_runs: int
    failed_runs: int
    stalled_runs: int

    @property
    def running(self) -> bool:
        return self.status == "running"

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["progress"] = (
            self.done_runs / self.total_runs if self.total_runs else 0.0
        )
        return data


@dataclass(frozen=True)
class RunRow:
    """One stored run: metrics, diagnostics, and reproduction coordinates."""

    id: int
    experiment_id: int
    run_index: int
    label: str
    status: str
    seed: int
    protocol: str
    config: dict[str, Any]
    fingerprint: str | None
    terminated: bool | None
    stalled: bool
    latency: float | None
    latency_per_decision: float | None
    messages: int | None
    messages_per_decision: float | None
    events_processed: int | None
    max_view: int | None
    wall_clock_seconds: float | None
    fault_counts: dict[str, Any] | None = None
    stall: dict[str, Any] | None = None
    profile: dict[str, Any] | None = None
    metrics: dict[str, Any] | None = None
    signals: dict[str, Any] | None = None
    failure: dict[str, Any] | None = None
    trace_path: str | None = None
    committed_tx_s: float | None = None
    requests_submitted: int | None = None
    requests_decided: int | None = None
    saturated: bool | None = None
    workload: dict[str, Any] | None = None
    health: dict[str, Any] | None = None
    anomaly_count: int | None = None
    min_fairness: float | None = None

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class ArtifactRow:
    """One stored artifact pointer/payload (mining winners, lineage...)."""

    id: int
    experiment_id: int
    kind: str
    name: str
    path: str | None
    payload: Any

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class RunDiff:
    """One run-index slot compared between two experiments."""

    run_index: int
    a: str | None  # fingerprint in experiment A (None: missing/failed)
    b: str | None
    a_latency: float | None = None
    b_latency: float | None = None

    @property
    def match(self) -> bool:
        return self.a is not None and self.a == self.b

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["match"] = self.match
        return data


@dataclass
class ExperimentDiff:
    """Fingerprint-level comparison of two stored experiments."""

    a: ExperimentRow
    b: ExperimentRow
    rows: list[RunDiff] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return bool(self.rows) and all(row.match for row in self.rows)

    @property
    def mismatches(self) -> list[RunDiff]:
        return [row for row in self.rows if not row.match]

    def summary(self) -> str:
        verdict = "IDENTICAL" if self.identical else (
            f"{len(self.mismatches)}/{len(self.rows)} slots differ"
        )
        return (
            f"experiment {self.a.id} ({self.a.name}) vs "
            f"{self.b.id} ({self.b.name}): {verdict}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "a": self.a.to_dict(),
            "b": self.b.to_dict(),
            "identical": self.identical,
            "rows": [row.to_dict() for row in self.rows],
        }


def _stall_dict(stall: Any) -> dict[str, Any]:
    """JSON-friendly stall report (integer node keys become strings)."""
    data = asdict(stall)
    data["node_last_activity"] = {
        str(node): when for node, when in data["node_last_activity"].items()
    }
    return data


class ExperimentStore:
    """Persistent sqlite-backed repository of experiments and runs.

    Usable as a context manager; all writes are serialized behind an
    internal lock so one store object can be shared by several recording
    threads.  Every public method opens one short transaction.

    Args:
        path: sqlite file path (created on first use).  ``":memory:"`` is
            accepted for tests but obviously does not persist.
        create: with ``False``, a path that does not exist yet raises
            :class:`StoreError` instead of materializing an empty store —
            the right mode for read-only consumers (``repro experiments``,
            ``repro serve``, ``inspect store:<id>``), where a fresh file
            would silently mask a typo'd path.
    """

    def __init__(self, path: str, *, create: bool = True) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        if (
            not create
            and self.path != ":memory:"
            and not os.path.exists(self.path)
        ):
            raise StoreError(
                f"experiment store {self.path!r} does not exist "
                "(record one first: repro run/sweep/mine --store PATH)"
            )
        try:
            self._conn = sqlite3.connect(
                self.path, timeout=30.0, check_same_thread=False
            )
        except sqlite3.Error as error:
            raise StoreError(
                f"cannot open experiment store {self.path!r}: {error}"
            ) from error
        self._conn.row_factory = sqlite3.Row
        try:
            self._init_schema()
        except sqlite3.DatabaseError as error:
            self._conn.close()
            raise StoreError(f"{self.path!r} is not an experiment store: {error}")

    def _init_schema(self) -> None:
        with self._lock, self._conn as conn:
            conn.execute("PRAGMA journal_mode=WAL")
            tables = {
                row[0] for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
            if tables and "store_meta" not in tables:
                # A populated sqlite file that is not one of ours: refuse
                # rather than grow experiment tables inside someone else's
                # database.
                raise StoreSchemaError(
                    f"{self.path!r} is an existing sqlite database but not "
                    "an experiment store (no store_meta table)"
                )
            conn.executescript(_SCHEMA)
            row = conn.execute(
                "SELECT value FROM store_meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
            elif int(row["value"]) != SCHEMA_VERSION:
                raise StoreSchemaError(
                    f"store {self.path!r} has schema version {row['value']}, "
                    f"this version of repro reads {SCHEMA_VERSION}; re-record "
                    "the experiments (the store is a cache of reproducible "
                    "runs, never the only copy)"
                )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- writes ------------------------------------------------------------

    def create_experiment(
        self,
        name: str,
        kind: str,
        config: SimulationConfig | dict[str, Any],
        total_runs: int,
        params: dict[str, Any] | None = None,
    ) -> int:
        """Insert a new ``running`` experiment; returns its id."""
        if isinstance(config, SimulationConfig):
            config = config.to_dict()
        with self._lock, self._conn as conn:
            cursor = conn.execute(
                "INSERT INTO experiments (name, kind, status, created_at, "
                "config_json, params_json, total_runs) VALUES (?,?,?,?,?,?,?)",
                (
                    name, kind, "running", time.time(),
                    _json(config), _json(params or {}), int(total_runs),
                ),
            )
            return int(cursor.lastrowid)

    def record_run(
        self,
        experiment_id: int,
        run_index: int,
        entry: SimulationResult | RunFailure,
        *,
        label: str = "",
        trace_path: str | None = None,
    ) -> int:
        """Insert one completed run (or failure) and bump progress counters.

        The row and the experiment's ``done/failed/stalled`` counters are
        written in one transaction, so concurrent readers (the dashboard's
        polling endpoints) always see consistent progress.
        """
        if isinstance(entry, RunFailure):
            row = self._failure_row(entry)
        else:
            row = self._result_row(entry)
        row.update(
            experiment_id=int(experiment_id),
            run_index=int(run_index),
            label=label,
            trace_path=trace_path,
        )
        columns = sorted(row)
        placeholders = ", ".join("?" for _ in columns)
        failed = 1 if row["status"] == "failed" else 0
        stalled = 1 if row["stalled"] else 0
        with self._lock, self._conn as conn:
            try:
                cursor = conn.execute(
                    f"INSERT INTO runs ({', '.join(columns)}) "
                    f"VALUES ({placeholders})",
                    [row[c] for c in columns],
                )
            except sqlite3.IntegrityError as error:
                raise StoreError(
                    f"run index {run_index} already recorded for "
                    f"experiment {experiment_id}: {error}"
                ) from error
            conn.execute(
                "UPDATE experiments SET done_runs = done_runs + 1, "
                "failed_runs = failed_runs + ?, "
                "stalled_runs = stalled_runs + ? WHERE id = ?",
                (failed, stalled, int(experiment_id)),
            )
            return int(cursor.lastrowid)

    def record_runs(
        self,
        experiment_id: int,
        entries: Iterable[SimulationResult | RunFailure],
        *,
        labels: Iterable[str] | None = None,
        start_index: int = 0,
    ) -> list[int]:
        """Batch-insert a whole result list (post-hoc recording)."""
        labels = list(labels or [])
        ids = []
        for offset, entry in enumerate(entries):
            label = labels[offset] if offset < len(labels) else ""
            ids.append(
                self.record_run(
                    experiment_id, start_index + offset, entry, label=label
                )
            )
        return ids

    def _result_row(self, result: SimulationResult) -> dict[str, Any]:
        signals = getattr(result, "signals_summary", None)
        return {
            "status": "ok",
            "seed": result.config.seed,
            "protocol": result.config.protocol,
            "config_json": _json(result.config.to_dict()),
            "fingerprint": result_fingerprint(result),
            "terminated": int(result.terminated),
            "stalled": int(result.stalled),
            "latency": result.latency,
            "latency_per_decision": result.latency_per_decision,
            "messages": result.messages,
            "messages_per_decision": result.messages_per_decision,
            "events_processed": result.events_processed,
            "max_view": result.max_view,
            "wall_clock_seconds": result.wall_clock_seconds,
            "fault_counts_json": (
                _json(asdict(result.fault_counts))
                if result.fault_counts.any() else None
            ),
            "stall_json": (
                _json(_stall_dict(result.stall)) if result.stall else None
            ),
            "profile_json": (
                _json(result.profile.to_dict()) if result.profile else None
            ),
            "metrics_json": (
                _json(result.run_metrics.to_dict())
                if result.run_metrics else None
            ),
            "signals_json": _json(signals) if signals else None,
            "failure_json": None,
            "committed_tx_s": (
                result.workload.committed_tx_s if result.workload else None
            ),
            "requests_submitted": (
                result.workload.submitted if result.workload else None
            ),
            "requests_decided": (
                result.workload.decided if result.workload else None
            ),
            "saturated": (
                int(result.workload.saturated) if result.workload else None
            ),
            "workload_json": (
                _json(result.workload.to_dict()) if result.workload else None
            ),
            "health_json": (
                _json(result.health.to_dict()) if result.health else None
            ),
            "anomaly_count": (
                result.health.anomaly_count if result.health else None
            ),
            "min_fairness": (
                result.health.min_fairness if result.health else None
            ),
        }

    def _failure_row(self, failure: RunFailure) -> dict[str, Any]:
        return {
            "status": "failed",
            "seed": failure.config.seed,
            "protocol": failure.config.protocol,
            "config_json": _json(failure.config.to_dict()),
            "fingerprint": None,
            "terminated": None,
            "stalled": 0,
            "latency": None,
            "latency_per_decision": None,
            "messages": None,
            "messages_per_decision": None,
            "events_processed": None,
            "max_view": None,
            "wall_clock_seconds": None,
            "fault_counts_json": None,
            "stall_json": None,
            "profile_json": None,
            "metrics_json": None,
            "signals_json": None,
            "failure_json": _json({
                "kind": failure.kind,
                "error_type": failure.error_type,
                "message": failure.message,
                "attempts": failure.attempts,
                "traceback": failure.traceback,
            }),
            "committed_tx_s": None,
            "requests_submitted": None,
            "requests_decided": None,
            "saturated": None,
            "workload_json": None,
            "health_json": None,
            "anomaly_count": None,
            "min_fairness": None,
        }

    def finish_experiment(
        self, experiment_id: int, status: str | None = None
    ) -> None:
        """Mark an experiment terminal (default: failed iff any run failed)."""
        with self._lock, self._conn as conn:
            if status is None:
                row = conn.execute(
                    "SELECT failed_runs FROM experiments WHERE id = ?",
                    (int(experiment_id),),
                ).fetchone()
                if row is None:
                    raise StoreError(f"no experiment with id {experiment_id}")
                status = "failed" if row["failed_runs"] else "complete"
            if status not in EXPERIMENT_STATUSES:
                raise StoreError(
                    f"unknown experiment status {status!r}; "
                    f"expected one of {EXPERIMENT_STATUSES}"
                )
            conn.execute(
                "UPDATE experiments SET status = ?, finished_at = ? "
                "WHERE id = ?",
                (status, time.time(), int(experiment_id)),
            )

    def set_progress(
        self,
        experiment_id: int,
        done_runs: int,
        total_runs: int | None = None,
    ) -> None:
        """Overwrite an experiment's progress counters directly.

        For batches whose individual runs are not recorded as run rows —
        the mining harness evaluates whole generations internally — but
        whose progress should still be live on the dashboard.
        """
        with self._lock, self._conn as conn:
            if total_runs is None:
                conn.execute(
                    "UPDATE experiments SET done_runs = ? WHERE id = ?",
                    (int(done_runs), int(experiment_id)),
                )
            else:
                conn.execute(
                    "UPDATE experiments SET done_runs = ?, total_runs = ? "
                    "WHERE id = ?",
                    (int(done_runs), int(total_runs), int(experiment_id)),
                )

    def set_trace_path(self, run_id: int, trace_path: str) -> None:
        with self._lock, self._conn as conn:
            conn.execute(
                "UPDATE runs SET trace_path = ? WHERE id = ?",
                (trace_path, int(run_id)),
            )

    def record_artifact(
        self,
        experiment_id: int,
        kind: str,
        *,
        name: str = "",
        path: str | None = None,
        payload: Any = None,
    ) -> int:
        """Attach a named artifact (e.g. a mining winner) to an experiment."""
        with self._lock, self._conn as conn:
            cursor = conn.execute(
                "INSERT INTO artifacts (experiment_id, kind, name, path, "
                "payload_json) VALUES (?,?,?,?,?)",
                (int(experiment_id), kind, name, path, _json(payload)),
            )
            return int(cursor.lastrowid)

    # -- queries -----------------------------------------------------------

    def experiments(self) -> list[ExperimentRow]:
        """Every stored experiment, newest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM experiments ORDER BY id DESC"
            ).fetchall()
        return [self._experiment_row(row) for row in rows]

    def experiment(self, experiment_id: int) -> ExperimentRow:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM experiments WHERE id = ?", (int(experiment_id),)
            ).fetchone()
        if row is None:
            raise StoreError(f"no experiment with id {experiment_id}")
        return self._experiment_row(row)

    def runs(self, experiment_id: int) -> list[RunRow]:
        """Every recorded run of one experiment, in run-index order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM runs WHERE experiment_id = ? ORDER BY run_index",
                (int(experiment_id),),
            ).fetchall()
        return [self._run_row(row) for row in rows]

    def run(self, run_id: int) -> RunRow:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE id = ?", (int(run_id),)
            ).fetchone()
        if row is None:
            raise StoreError(f"no run with id {run_id}")
        return self._run_row(row)

    def trace_path(self, run_id: int) -> str:
        """The on-disk trace pointer of one run (raises when absent)."""
        path = self.run(run_id).trace_path
        if not path:
            raise StoreError(
                f"run {run_id} recorded no trace pointer; re-run with "
                "--trace-out to capture one"
            )
        return path

    def artifacts(self, experiment_id: int) -> list[ArtifactRow]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM artifacts WHERE experiment_id = ? ORDER BY id",
                (int(experiment_id),),
            ).fetchall()
        return [
            ArtifactRow(
                id=row["id"], experiment_id=row["experiment_id"],
                kind=row["kind"], name=row["name"], path=row["path"],
                payload=_loads(row["payload_json"]),
            )
            for row in rows
        ]

    def diff(self, experiment_a: int, experiment_b: int) -> ExperimentDiff:
        """Fingerprint-compare two experiments slot by slot (run_index)."""
        a = self.experiment(experiment_a)
        b = self.experiment(experiment_b)
        runs_a = {run.run_index: run for run in self.runs(experiment_a)}
        runs_b = {run.run_index: run for run in self.runs(experiment_b)}
        rows = []
        for index in sorted(set(runs_a) | set(runs_b)):
            run_a, run_b = runs_a.get(index), runs_b.get(index)
            rows.append(RunDiff(
                run_index=index,
                a=run_a.fingerprint if run_a else None,
                b=run_b.fingerprint if run_b else None,
                a_latency=run_a.latency_per_decision if run_a else None,
                b_latency=run_b.latency_per_decision if run_b else None,
            ))
        return ExperimentDiff(a=a, b=b, rows=rows)

    def _experiment_row(self, row: sqlite3.Row) -> ExperimentRow:
        return ExperimentRow(
            id=row["id"], name=row["name"], kind=row["kind"],
            status=row["status"], created_at=row["created_at"],
            finished_at=row["finished_at"],
            config=_loads(row["config_json"]) or {},
            params=_loads(row["params_json"]) or {},
            total_runs=row["total_runs"], done_runs=row["done_runs"],
            failed_runs=row["failed_runs"], stalled_runs=row["stalled_runs"],
        )

    def _run_row(self, row: sqlite3.Row) -> RunRow:
        return RunRow(
            id=row["id"], experiment_id=row["experiment_id"],
            run_index=row["run_index"], label=row["label"],
            status=row["status"], seed=row["seed"], protocol=row["protocol"],
            config=_loads(row["config_json"]) or {},
            fingerprint=row["fingerprint"],
            terminated=(
                None if row["terminated"] is None else bool(row["terminated"])
            ),
            stalled=bool(row["stalled"]),
            latency=row["latency"],
            latency_per_decision=row["latency_per_decision"],
            messages=row["messages"],
            messages_per_decision=row["messages_per_decision"],
            events_processed=row["events_processed"],
            max_view=row["max_view"],
            wall_clock_seconds=row["wall_clock_seconds"],
            fault_counts=_loads(row["fault_counts_json"]),
            stall=_loads(row["stall_json"]),
            profile=_loads(row["profile_json"]),
            metrics=_loads(row["metrics_json"]),
            signals=_loads(row["signals_json"]),
            failure=_loads(row["failure_json"]),
            trace_path=row["trace_path"],
            committed_tx_s=row["committed_tx_s"],
            requests_submitted=row["requests_submitted"],
            requests_decided=row["requests_decided"],
            saturated=(
                None if row["saturated"] is None else bool(row["saturated"])
            ),
            workload=_loads(row["workload_json"]),
            health=_loads(row["health_json"]),
            anomaly_count=row["anomaly_count"],
            min_fairness=row["min_fairness"],
        )
