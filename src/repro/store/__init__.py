"""Persistent experiment repository (sqlite) and run recorders.

See :mod:`repro.store.store` for the schema and design rules, and
``docs/experiments.md`` for the CLI workflow (``run --store``,
``repro experiments``, ``repro serve``).
"""

from .recorder import RunRecorder, StoreRecorder, offset_recorder
from .store import (
    EXPERIMENT_STATUSES,
    SCHEMA_VERSION,
    ArtifactRow,
    ExperimentDiff,
    ExperimentRow,
    ExperimentStore,
    RunDiff,
    RunRow,
    StoreError,
    StoreSchemaError,
)

__all__ = [
    "EXPERIMENT_STATUSES",
    "SCHEMA_VERSION",
    "ArtifactRow",
    "ExperimentDiff",
    "ExperimentRow",
    "ExperimentStore",
    "RunDiff",
    "RunRecorder",
    "RunRow",
    "StoreError",
    "StoreRecorder",
    "StoreSchemaError",
    "offset_recorder",
]
