"""Opt-in run recorders bridging the runners to the experiment store.

A *recorder* is just a callable ``recorder(run_index, entry)`` invoked once
per terminal run (``entry`` is a :class:`~repro.core.results.SimulationResult`
or :class:`~repro.core.results.RunFailure`).  The serial runner calls it as
each run finishes; the :class:`~repro.parallel.ParallelRunner` calls it from
the dispatch loop the moment a worker reports — *completion order*, which is
what makes the store's progress rows live while a fleet is still in flight
(the run rows themselves land keyed by ``run_index``, so the stored order is
still deterministic).

:class:`StoreRecorder` is the standard implementation: it owns one
experiment row, inserts one run row per callback, and closes the experiment
when told the batch is over.  Because recording happens strictly after a run
completes it can never perturb the run — fingerprints with a recorder
attached are byte-identical to bare runs.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..core.config import SimulationConfig
from ..core.results import RunFailure, SimulationResult
from .store import ExperimentStore

#: The recorder contract the runners accept.
RunRecorder = Callable[[int, "SimulationResult | RunFailure"], None]


class StoreRecorder:
    """Records one experiment's runs into an :class:`ExperimentStore`.

    Args:
        store: the open store to write into.
        experiment_id: id of an experiment created beforehand (or use
            :meth:`open` to create it in one step).
        labels: optional per-run-index display labels (e.g. the sweep
            variation a run belongs to, ``"lam=400 rep 2"``) — a sequence
            indexed by run index, or a sparse ``{run_index: label}`` mapping.
        trace_paths: optional per-run-index JSONL trace pointers recorded
            alongside the metrics; sequence or sparse mapping like ``labels``.
    """

    def __init__(
        self,
        store: ExperimentStore,
        experiment_id: int,
        *,
        labels: Sequence[str] | Mapping[int, str] | None = None,
        trace_paths: Sequence[str | None] | Mapping[int, str] | None = None,
    ) -> None:
        self.store = store
        self.experiment_id = experiment_id
        self.labels = _by_index(labels)
        self.trace_paths = _by_index(trace_paths)
        #: run_index -> store run id, filled as results arrive.
        self.run_ids: dict[int, int] = {}

    @classmethod
    def open(
        cls,
        store: ExperimentStore,
        name: str,
        kind: str,
        config: SimulationConfig | dict[str, Any],
        total_runs: int,
        *,
        params: dict[str, Any] | None = None,
        labels: Sequence[str] | Mapping[int, str] | None = None,
        trace_paths: Sequence[str | None] | Mapping[int, str] | None = None,
    ) -> "StoreRecorder":
        """Create the experiment row and a recorder for it in one step."""
        experiment_id = store.create_experiment(
            name, kind, config, total_runs, params=params
        )
        return cls(
            store, experiment_id, labels=labels, trace_paths=trace_paths
        )

    def __call__(
        self, run_index: int, entry: "SimulationResult | RunFailure"
    ) -> None:
        label = self.labels.get(run_index) or ""
        trace_path = self.trace_paths.get(run_index)
        self.run_ids[run_index] = self.store.record_run(
            self.experiment_id, run_index, entry,
            label=label, trace_path=trace_path,
        )

    def finish(self, status: str | None = None) -> None:
        """Close the experiment row (see :meth:`ExperimentStore.finish_experiment`)."""
        self.store.finish_experiment(self.experiment_id, status)


def _by_index(
    values: Sequence[Any] | Mapping[int, Any] | None,
) -> dict[int, Any]:
    """Normalize a sequence or sparse mapping to ``{run_index: value}``."""
    if values is None:
        return {}
    if isinstance(values, Mapping):
        return {int(index): value for index, value in values.items()}
    return {index: value for index, value in enumerate(values)}


def offset_recorder(recorder: RunRecorder, offset: int) -> RunRecorder:
    """A view of ``recorder`` with every run index shifted by ``offset``.

    The serial ``sweep`` path runs one repetition batch per variation, each
    indexed from zero; shifting per-variation indices into the experiment's
    global slot numbering keeps serial and parallel recordings identical.
    """
    def shifted(run_index: int, entry: "SimulationResult | RunFailure") -> None:
        recorder(offset + run_index, entry)

    return shifted
