"""Declarative attack scenarios, composition, and worst-case mining.

The scenario layer turns the global attacker framework's strategies into
*data*: a :class:`ScenarioSpec` composes capability-gated attack clauses
(with timed activation windows), environmental fault clauses, and overlay-
aware targeting into one seed-deterministic adversary, serializable to
JSON and to a compact CLI grammar (``--scenario``), validated at config
time.  :mod:`repro.scenarios.search` closes the loop: a deterministic
evolve harness (``repro mine``) that searches the spec space for worst
cases and emits replayable artifacts.  See ``docs/scenarios.md``.
"""

from .presets import available_scenarios, get_scenario, register_scenario
from .search import (
    OBJECTIVES,
    ArtifactCheck,
    MiningReport,
    check_artifact,
    load_artifact,
    mine,
    replay_winner,
    winner_config,
)
from .spec import (
    AttackClause,
    ScenarioSpec,
    load_scenario,
    parse_scenario_spec,
)

__all__ = [
    "ArtifactCheck",
    "AttackClause",
    "MiningReport",
    "OBJECTIVES",
    "ScenarioSpec",
    "available_scenarios",
    "check_artifact",
    "get_scenario",
    "load_artifact",
    "load_scenario",
    "mine",
    "parse_scenario_spec",
    "register_scenario",
    "replay_winner",
    "winner_config",
]
