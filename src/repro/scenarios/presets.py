"""Named attack-scenario presets.

Mirrors :mod:`repro.faults.presets`: a preset is a factory returning a
fresh :class:`~repro.scenarios.spec.ScenarioSpec` under a short name,
usable anywhere a scenario is — ``--scenario worst-case-pbft-n32`` on the
CLI, or :func:`get_scenario` programmatically.  ``repro list`` prints the
registry.

Two of the built-ins are **mined**: they are the winning specs of committed
``repro mine`` runs (see ``artifacts/mining/``), promoted to names so the
worst cases the search found stay one flag away.  Each mined preset's spec
dict is kept byte-identical to its artifact's ``winner.spec`` so replaying
the preset reproduces the artifact's fingerprints.
"""

from __future__ import annotations

from typing import Callable

from ..core.errors import ConfigurationError
from .spec import ScenarioSpec

_SCENARIOS: dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(name: str, factory: Callable[[], ScenarioSpec]) -> None:
    """Register ``factory`` under ``name`` (overwrites silently, as with
    the fault-preset registry)."""
    _SCENARIOS[name] = factory


def get_scenario(name: str) -> ScenarioSpec:
    """A fresh spec for preset ``name``.

    Raises:
        ConfigurationError: unknown preset.
    """
    try:
        factory = _SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario preset {name!r}; available: {available_scenarios()}"
        ) from None
    return factory()


def available_scenarios() -> list[str]:
    """Registered scenario preset names, sorted."""
    return sorted(_SCENARIOS)


# ---------------------------------------------------------------------------
# Built-in presets
# ---------------------------------------------------------------------------

# A hand-written starter: the signal-driven adaptive adversary chasing the
# current quorum-closing senders with 6x delay inflation.
register_scenario(
    "adaptive-chaser",
    lambda: ScenarioSpec.from_dict({
        "name": "adaptive-chaser",
        "attacks": [
            {"attack": "adaptive",
             "params": {"action": "delay", "signal": "critical", "k": 2,
                        "factor": 6.0}},
        ],
    }),
)

# Mined preset (artifacts/mining/worst-case-pbft-n32.json): the winning
# spec of the committed `repro mine` run against pbft n=32.  Filled in by
# that run; see the artifact for the full lineage and baseline.
register_scenario(
    "worst-case-pbft-n32",
    lambda: ScenarioSpec.from_dict(_WORST_CASE_PBFT_N32),
)

# Mined preset (artifacts/mining/relay-chokehold-tree.json): the winning
# spec of the committed tree-overlay mining run — requires
# dissemination='tree' (the validator rejects relay targeting otherwise).
register_scenario(
    "relay-chokehold-tree",
    lambda: ScenarioSpec.from_dict(_RELAY_CHOKEHOLD_TREE),
)

#: Winner of artifacts/mining/worst-case-pbft-n32.json (kept byte-identical
#: to the artifact's ``winner.spec``, mined name included — the name feeds
#: the config and hence the replay fingerprint).  104.4x the null-attacker
#: baseline on pbft n=32: an opening partition plus two signal-driven
#: adaptive delay clauses stacked on a global slowdown.
_WORST_CASE_PBFT_N32: dict = {
    "attacks": [
        {
            "attack": "partition",
            "params": {"end": 20000.0, "mode": "drop", "start": 0.0},
        },
        {
            "attack": "adaptive",
            "params": {"action": "delay", "factor": 10.0, "k": 3,
                       "period": 500.0, "signal": "critical"},
        },
        {
            "attack": "targeted-delay",
            "params": {"extra_delay": 500.0, "factor": 3.0},
        },
        {
            "attack": "adaptive",
            "params": {"action": "delay", "factor": 6.0, "k": 1,
                       "period": 1000.0, "signal": "critical"},
        },
    ],
    "name": "mined-020",
}

#: Winner of artifacts/mining/relay-chokehold-tree.json (kept byte-identical
#: to the artifact's ``winner.spec``).  Mined in ``--refine`` mode from a
#: relay-only seed: delaying just the tree overlay's relay nodes 16x (plus
#: 1s of fixed delay) costs pbft n=32 a 38.5x median-latency hit.
_RELAY_CHOKEHOLD_TREE: dict = {
    "attacks": [
        {
            "attack": "targeted-delay",
            "params": {"extra_delay": 1000.0, "factor": 16.0,
                       "targets": "relays"},
        },
    ],
    "name": "mined-020",
}
