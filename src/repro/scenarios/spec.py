"""Declarative attack-scenario specifications.

A :class:`ScenarioSpec` is a serializable document composing one or more
capability-gated attacker strategies (with timed activation windows) and
environmental fault-schedule clauses into a single seed-deterministic
adversary.  The same document exists in three equivalent forms:

* the **Python API** (:class:`ScenarioSpec` / :class:`AttackClause`),
* **JSON** (``to_json`` / ``from_json``, byte-identical round-trip), and
* the **compact CLI grammar** (:func:`parse_scenario_spec`), a superset of
  the ``--faults`` grammar: ``;``-separated clauses, each either a fault
  clause (``loss=0.1``, ``crash=3@1000:8000``, a fault preset name) or an
  attack clause ``attack[=key:value,...][@start:end]``::

      targeted-delay=targets:relays,factor:4
      failstop=count:2@5000
      partition=start:2000,end:12000; loss=0.05
      adaptive=action:delay,signal:critical,factor:6

  Attack parameter values parse as int, float, ``true``/``false``, a
  ``+``-separated list (``targets:1+2+3``), or a bare string.

Applying a spec (:meth:`ScenarioSpec.apply`) compiles it onto an existing
:class:`~repro.core.config.SimulationConfig`: fault clauses merge into the
config's fault schedule and the attack clauses become the ``"scenario"``
composite attacker (:mod:`repro.scenarios.composite`) with the spec itself
as its parameters — so a scenario run is an ordinary run, replayable from
its config alone, and the JSON and Python forms produce fingerprint-
identical runs.

Validation (:meth:`ScenarioSpec.validate`) happens at config time, not
mid-run: unknown attacks, malformed windows, corruption demands exceeding
the budget ``f``, windowed corruption without the ``ADAPTIVE`` capability,
overlay targeting without a tree overlay, and clauses exceeding an ``allow``
capability cap are all rejected before a single event fires.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..attacks.base import Capability
from ..attacks.registry import get_attack
from ..core.config import (
    FAULT_KINDS,
    AttackConfig,
    FaultScheduleConfig,
    FaultSpec,
    SimulationConfig,
)
from ..core.errors import ConfigurationError
from ..faults.presets import available_presets as available_fault_presets
from ..faults.spec import _parse_clause as _parse_fault_clause
from ..faults.spec import _split_window

#: Capability names accepted by ``ScenarioSpec.allow``.
CAPABILITY_NAMES = {
    "observe": Capability.OBSERVE,
    "network": Capability.NETWORK,
    "byzantine": Capability.BYZANTINE,
    "adaptive": Capability.ADAPTIVE,
}


def _parse_allow(names: list[str]) -> Capability:
    caps = Capability.NONE
    for name in names:
        try:
            caps |= CAPABILITY_NAMES[str(name).lower()]
        except KeyError:
            raise ConfigurationError(
                f"unknown capability {name!r} in scenario allow list; "
                f"available: {sorted(CAPABILITY_NAMES)}"
            ) from None
    return caps


def capability_names(caps: Capability) -> list[str]:
    """Sorted lower-case names of the capabilities in ``caps``."""
    return sorted(name for name, flag in CAPABILITY_NAMES.items() if flag in caps)


@dataclass
class AttackClause:
    """One attacker strategy inside a scenario, with an activation window.

    Attributes:
        attack: registry name of the attacker (``repro.attacks``).
        params: attacker parameters, passed through verbatim.
        start: activation time in ms (0 = active from the start).
        end: deactivation time in ms, exclusive (``None`` = never).
    """

    attack: str
    params: dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None

    def active_at(self, time: float) -> bool:
        """True when ``time`` falls inside the activation window."""
        return time >= self.start and (self.end is None or time < self.end)

    def attacker_class(self):
        """The clause's attacker class (raises on unknown names)."""
        return get_attack(self.attack)

    def declared_capabilities(self) -> Capability:
        """The capabilities this clause's attacker will hold.

        Instantiates the attacker (without binding it) so instance-level
        declarations — e.g. ``targeted-delay`` adding ``OBSERVE`` when a
        type filter is configured — are honoured.
        """
        return self.attacker_class()(self.params).capabilities

    def validate(self, config: SimulationConfig, f: int) -> None:
        if self.start < 0:
            raise ConfigurationError(
                f"attack clause {self.attack!r}: window start must be >= 0, "
                f"got {self.start}"
            )
        if self.end is not None and self.end <= self.start:
            raise ConfigurationError(
                f"attack clause {self.attack!r}: window end must be > start, "
                f"got [{self.start}, {self.end})"
            )
        cls = self.attacker_class()
        caps = self.declared_capabilities()
        demand = cls.corruption_demand(self.params, f)
        if demand > 0 and self.start > 0 and Capability.ADAPTIVE not in caps:
            raise ConfigurationError(
                f"attack clause {self.attack!r} corrupts nodes but activates "
                f"at t={self.start:g} ms without the ADAPTIVE capability; "
                "corruption after time zero is static-attacker-illegal"
            )
        if (
            self.params.get("targets") == "relays"
            and config.network.dissemination != "tree"
        ):
            raise ConfigurationError(
                f"attack clause {self.attack!r} targets the dissemination "
                "overlay's relays, but dissemination="
                f"{config.network.dissemination!r} has no static relay set; "
                "overlay targeting requires dissemination='tree'"
            )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Canonical dict form; benign defaults are omitted."""
        data: dict[str, Any] = {"attack": self.attack}
        if self.params:
            data["params"] = self.params
        if self.start != 0.0:
            data["start"] = self.start
        if self.end is not None:
            data["end"] = self.end
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AttackClause":
        data = dict(data)
        unknown = set(data) - {"attack", "params", "start", "end"}
        if unknown:
            raise ConfigurationError(
                f"unknown attack clause keys: {sorted(unknown)}"
            )
        if "attack" not in data:
            raise ConfigurationError("attack clause needs an 'attack' name")
        return cls(
            attack=data["attack"],
            params=dict(data.get("params", {})),
            start=float(data.get("start", 0.0)),
            end=None if data.get("end") is None else float(data["end"]),
        )

    def describe(self) -> str:
        window = ""
        if self.start != 0.0 or self.end is not None:
            window = f"@{self.start:g}:{'' if self.end is None else f'{self.end:g}'}"
        args = ",".join(f"{k}:{v}" for k, v in self.params.items())
        return f"{self.attack}{'=' + args if args else ''}{window}"


@dataclass
class ScenarioSpec:
    """A declarative, serializable attack scenario.

    Attributes:
        name: human-readable scenario name (carried into artifacts).
        attacks: attacker clauses, applied in order per message.
        faults: environmental fault clauses merged into the run's fault
            schedule (never charged against the attacker).
        allow: optional capability cap — lower-case capability names; every
            clause's declared capabilities must stay within it.  ``None``
            means uncapped.
    """

    name: str = "scenario"
    attacks: list[AttackClause] = field(default_factory=list)
    faults: list[FaultSpec] = field(default_factory=list)
    allow: list[str] | None = None

    # -- validation ----------------------------------------------------------

    def capabilities(self) -> Capability:
        """Union of the declared capabilities of every attack clause."""
        caps = Capability.NONE
        for clause in self.attacks:
            caps |= clause.declared_capabilities()
        return caps

    def corruption_demand(self, f: int) -> int:
        """Total corruption-budget demand across all attack clauses."""
        return sum(
            clause.attacker_class().corruption_demand(clause.params, f)
            for clause in self.attacks
        )

    def resolve_f(self, config: SimulationConfig) -> int:
        """The run's corruption budget ``f`` (protocol maximum if unset)."""
        if config.f is not None:
            return config.f
        from ..protocols.registry import get_protocol

        return get_protocol(config.protocol).max_resilience(config.n)

    def validate(self, config: SimulationConfig) -> None:
        """Reject capability violations and budget overruns at config time.

        Raises:
            ConfigurationError: unknown attack, malformed window, windowed
                corruption without ``ADAPTIVE``, overlay targeting without a
                tree overlay, total corruption demand exceeding ``f``, or a
                clause exceeding the ``allow`` capability cap.
        """
        f = self.resolve_f(config)
        cap = _parse_allow(self.allow) if self.allow is not None else None
        for clause in self.attacks:
            clause.validate(config, f)
            if cap is not None:
                excess = clause.declared_capabilities() & ~cap
                if excess:
                    raise ConfigurationError(
                        f"attack clause {clause.attack!r} needs capabilities "
                        f"{capability_names(excess)} outside the scenario's "
                        f"allow list {sorted(self.allow or [])}"
                    )
        demand = self.corruption_demand(f)
        if demand > f:
            raise ConfigurationError(
                f"scenario {self.name!r} demands {demand} corruptions in "
                f"total but the budget is f={f}"
            )
        for spec in self.faults:
            spec.validate(config.n)

    # -- application ---------------------------------------------------------

    def apply(self, config: SimulationConfig) -> SimulationConfig:
        """Compile this scenario onto ``config``.

        Fault clauses are appended to the config's fault schedule; attack
        clauses become the ``"scenario"`` composite attacker carrying this
        spec as its parameters.  The result is an ordinary configuration:
        serializable, replayable, fingerprint-stable.

        Raises:
            ConfigurationError: if ``config`` already carries a non-null
                attack (put it in the scenario instead), or on any
                validation failure.
        """
        self.validate(config)
        if config.attack.name != "null":
            raise ConfigurationError(
                f"cannot apply scenario {self.name!r} on top of attack "
                f"{config.attack.name!r}; add it to the scenario as a clause"
            )
        changes: dict[str, Any] = {}
        if self.attacks:
            changes["attack"] = AttackConfig(name="scenario", params=self.to_dict())
        if self.faults:
            changes["faults"] = FaultScheduleConfig(
                specs=list(config.faults.specs) + [FaultSpec(**_spec_dict(s)) for s in self.faults]
            )
        if not changes:
            return config
        return config.replace(**changes)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Canonical dict form; empty sections are omitted."""
        data: dict[str, Any] = {"name": self.name}
        if self.attacks:
            data["attacks"] = [clause.to_dict() for clause in self.attacks]
        if self.faults:
            data["faults"] = [_fault_dict(spec) for spec in self.faults]
        if self.allow is not None:
            data["allow"] = sorted(str(name).lower() for name in self.allow)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        data = dict(data)
        unknown = set(data) - {"name", "attacks", "faults", "allow"}
        if unknown:
            raise ConfigurationError(f"unknown scenario keys: {sorted(unknown)}")
        attacks = [
            clause if isinstance(clause, AttackClause) else AttackClause.from_dict(clause)
            for clause in data.get("attacks", [])
        ]
        faults = [
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in data.get("faults", [])
        ]
        allow = data.get("allow")
        return cls(
            name=str(data.get("name", "scenario")),
            attacks=attacks,
            faults=faults,
            allow=None if allow is None else [str(n) for n in allow],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        parts = [clause.describe() for clause in self.attacks]
        parts.extend(spec.describe() for spec in self.faults)
        return f"{self.name}: " + ("; ".join(parts) or "<empty>")


def _spec_dict(spec: FaultSpec) -> dict[str, Any]:
    from dataclasses import asdict

    return asdict(spec)


def _fault_dict(spec: FaultSpec) -> dict[str, Any]:
    """Canonical (default-free) dict form of one fault spec."""
    data = _spec_dict(spec)
    defaults = FaultSpec(kind=spec.kind)
    return {
        key: value
        for key, value in data.items()
        if key == "kind" or value != getattr(defaults, key)
    }


# ---------------------------------------------------------------------------
# Compact CLI grammar
# ---------------------------------------------------------------------------


def parse_scenario_spec(text: str, name: str = "cli-scenario") -> ScenarioSpec:
    """Parse a ``--scenario`` string into a :class:`ScenarioSpec`.

    Each ``;``-separated clause is an attack clause
    (``attack[=key:value,...][@start:end]``) when its head names a
    registered attack, otherwise a fault clause in the ``--faults`` grammar
    (fault kinds and fault presets).

    Raises:
        ConfigurationError: on any grammar violation, with the offending
            clause named.
    """
    from ..attacks.registry import available_attacks

    spec = ScenarioSpec(name=name)
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        head, (start, end) = _split_window(clause)
        attack_name, sep, args = head.partition("=")
        attack_name = attack_name.strip()
        if attack_name in FAULT_KINDS:
            spec.faults.extend(_parse_fault_clause(clause))
            continue
        try:
            get_attack(attack_name)
        except ConfigurationError:
            if not sep and attack_name in available_fault_presets():
                spec.faults.extend(_parse_fault_clause(clause))
                continue
            raise ConfigurationError(
                f"unknown scenario clause {clause!r}: {attack_name!r} is "
                f"neither an attack ({available_attacks()}), a fault kind "
                f"({list(FAULT_KINDS)}), nor a fault preset "
                f"({available_fault_presets()})"
            ) from None
        params = _parse_attack_args(args.strip(), clause) if sep else {}
        spec.attacks.append(
            AttackClause(attack=attack_name, params=params, start=start, end=end)
        )
    return spec


def _parse_attack_args(args: str, clause: str) -> dict[str, Any]:
    if not args:
        raise ConfigurationError(
            f"attack clause {clause!r} has an empty parameter list; "
            "use key:value pairs, e.g. targeted-delay=factor:4"
        )
    params: dict[str, Any] = {}
    for pair in args.split(","):
        key, sep, value = pair.partition(":")
        key = key.strip()
        if not sep or not key or not value.strip():
            raise ConfigurationError(
                f"bad attack parameter {pair!r} in clause {clause!r}; "
                "expected key:value"
            )
        params[key] = _parse_value(value.strip())
    return params


def _parse_value(text: str) -> Any:
    if "+" in text:
        return [_parse_scalar(part) for part in text.split("+")]
    return _parse_scalar(text)


def _parse_scalar(text: str) -> Any:
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def load_scenario(source: str) -> ScenarioSpec:
    """Resolve a ``--scenario`` argument into a spec.

    In order: a registered scenario preset name, a path to a JSON spec
    file (recognised by an existing file or a ``.json`` suffix), or the
    compact grammar.
    """
    import os

    from .presets import available_scenarios, get_scenario

    if source in available_scenarios():
        return get_scenario(source)
    if source.endswith(".json") or os.path.isfile(source):
        try:
            with open(source, encoding="utf-8") as handle:
                return ScenarioSpec.from_json(handle.read())
        except OSError as error:
            raise ConfigurationError(
                f"cannot read scenario file {source!r}: {error}"
            ) from None
    return parse_scenario_spec(source)
