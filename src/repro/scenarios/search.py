"""Worst-case mining: deterministic search over attack-scenario specs.

:func:`mine` runs a seeded evolve loop over :class:`ScenarioSpec` documents
against a base configuration, scoring each candidate by an adversarial
objective and keeping the worst offenders as parents for the next
generation.  Every run inside a generation is an independent simulation, so
the whole generation is flattened into one :class:`~repro.parallel`
batch — mining scales across cores exactly like a sweep.

Design points:

* **Deterministic.** Candidate generation and mutation draw only from
  ``random.Random(search_seed)``; evaluation seeds are the base seed plus
  the repetition index; selection ties break on the spec's canonical JSON.
  The same inputs always mine the same winner.
* **Graceful degradation.** A failed run (:class:`RunFailure` — worker
  crash, timeout, simulation error) or a stalled/unterminated run never
  aborts the harness: it is recorded in the lineage and, for the latency
  objective, scores the spec *worst-case-unfit* (a spec that kills the run
  outright is not a latency worst case).  The ``stall`` objective instead
  counts stalls as the score.  Every evaluation runs with the liveness
  watchdog armed and ``allow_horizon`` set, so hostile specs degrade into
  reports rather than exceptions.
* **Replayable artifact.** The result serializes the base configuration,
  the search parameters, the null-attacker baseline, the full lineage, and
  the winner with its per-seed ``result_fingerprint``s.
  :func:`replay_winner` reconstructs and re-runs the winning configuration
  from the artifact alone — on any machine, in any process — and must
  reproduce those fingerprints byte-identically.

Objectives:

* ``"median-latency"`` — median (across repetitions) of the run's
  per-decision decision latency; stalls/failures are unfit.
* ``"stall"`` — fraction of repetitions the liveness watchdog stopped (or
  that hit the horizon); ties break on latency.
* ``"first-decision"`` — median time until the first decision (client
  starvation); runs that never decide score their full duration.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable

import random

from ..core.config import SimulationConfig
from ..core.errors import ConfigurationError
from ..core.results import (
    RunFailure,
    SimulationResult,
    result_fingerprint,
)
from ..core.runner import run_simulation
from .spec import AttackClause, ScenarioSpec

#: Objectives accepted by :func:`mine` and ``repro mine``.
OBJECTIVES = ("median-latency", "stall", "first-decision", "throughput")

#: Artifact schema identifier.
ARTIFACT_KIND = "repro-mining-artifact"
ARTIFACT_VERSION = 1

#: Liveness-watchdog window used for evaluation runs when the base config
#: does not set one, in multiples of the protocol's lambda.
DEFAULT_STALL_LAMBDAS = 30.0


@dataclass
class EvaluatedSpec:
    """One candidate's evaluation record (a lineage entry).

    ``score`` is ``None`` when the spec was scored worst-case-unfit; the
    reason is then in ``unfit_reason``.
    """

    spec: dict[str, Any]
    generation: int
    score: float | None = None
    median_latency: float | None = None
    first_decision: float | None = None
    stalled: int = 0
    failures: int = 0
    unfit_reason: str | None = None
    parent: str | None = None
    fingerprints: list[str | None] = field(default_factory=list)

    @property
    def fit(self) -> bool:
        return self.score is not None

    def spec_json(self) -> str:
        return json.dumps(self.spec, sort_keys=True)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec,
            "generation": self.generation,
            "score": self.score,
            "median_latency": self.median_latency,
            "first_decision": self.first_decision,
            "stalled": self.stalled,
            "failures": self.failures,
            "unfit_reason": self.unfit_reason,
            "parent": self.parent,
            "fingerprints": self.fingerprints,
        }


@dataclass
class MiningReport:
    """The full outcome of one :func:`mine` run."""

    objective: str
    base_config: SimulationConfig
    search_seed: int
    generations: int
    population: int
    reps: int
    seeds: list[int]
    baseline_latency: float
    baseline_fingerprints: list[str]
    lineage: list[EvaluatedSpec]
    winner: EvaluatedSpec | None

    @property
    def ratio_vs_baseline(self) -> float | None:
        if (
            self.winner is None
            or self.winner.median_latency is None
            or self.baseline_latency <= 0
        ):
            return None
        return self.winner.median_latency / self.baseline_latency

    def to_dict(self) -> dict[str, Any]:
        winner = None
        if self.winner is not None:
            winner = dict(self.winner.to_dict())
            winner["ratio_vs_baseline"] = self.ratio_vs_baseline
        return {
            "kind": ARTIFACT_KIND,
            "version": ARTIFACT_VERSION,
            "objective": self.objective,
            "base_config": self.base_config.to_dict(),
            "search_seed": self.search_seed,
            "generations": self.generations,
            "population": self.population,
            "reps": self.reps,
            "seeds": self.seeds,
            "baseline": {
                "median_latency": self.baseline_latency,
                "fingerprints": self.baseline_fingerprints,
            },
            "winner": winner,
            "lineage": [entry.to_dict() for entry in self.lineage],
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def summary(self) -> str:
        evaluated = len(self.lineage)
        unfit = sum(1 for entry in self.lineage if not entry.fit)
        if self.winner is None:
            return (
                f"mine[{self.objective}]: no fit spec among {evaluated} "
                f"candidates ({unfit} unfit)"
            )
        ratio = self.ratio_vs_baseline
        ratio_s = f" ({ratio:.2f}x baseline)" if ratio is not None else ""
        return (
            f"mine[{self.objective}]: {evaluated} specs evaluated "
            f"({unfit} unfit), winner score={self.winner.score:.1f}{ratio_s}: "
            f"{ScenarioSpec.from_dict(self.winner.spec).describe()}"
        )


# ---------------------------------------------------------------------------
# Candidate generation and mutation
# ---------------------------------------------------------------------------

_FACTORS = (2.0, 3.0, 4.0, 6.0, 8.0)
_ADAPTIVE_FACTORS = (3.0, 6.0, 10.0)
_SIGNALS = ("critical", "stragglers", "busiest")


def _clause_templates(
    rng: random.Random, base: SimulationConfig, f: int, remaining: int
) -> list[AttackClause]:
    """Candidate clause factories, each respecting the remaining budget."""
    lam = base.lam
    n = base.n
    tree = base.network.dissemination == "tree"
    options: list[Callable[[], AttackClause]] = []

    def delay_clause() -> AttackClause:
        params: dict[str, Any] = {"factor": rng.choice(_FACTORS)}
        roll = rng.random()
        if tree and roll < 0.5:
            params["targets"] = "relays"
        elif roll < 0.75:
            k = rng.randint(1, max(1, n // 2))
            params["targets"] = sorted(rng.sample(range(n), k))
        if rng.random() < 0.3:
            params["extra_delay"] = rng.choice((0.5, 1.0, 2.0)) * lam
        return AttackClause(attack="targeted-delay", params=params)

    options.append(delay_clause)

    def partition_clause() -> AttackClause:
        start = rng.choice((0.0, lam, 2 * lam))
        duration = rng.choice((5.0, 10.0, 20.0)) * lam
        return AttackClause(
            attack="partition",
            params={
                "start": start,
                "end": start + duration,
                "mode": rng.choice(("drop", "delay")),
            },
        )

    options.append(partition_clause)

    def adaptive_clause() -> AttackClause:
        return AttackClause(
            attack="adaptive",
            params={
                "action": "delay",
                "signal": rng.choice(_SIGNALS),
                "k": rng.randint(1, 3),
                "factor": rng.choice(_ADAPTIVE_FACTORS),
                "period": rng.choice((0.5, 1.0)) * lam,
            },
        )

    options.append(adaptive_clause)

    if remaining >= 1:

        def failstop_clause() -> AttackClause:
            count = rng.randint(1, remaining)
            at = rng.choice((0.0, lam))
            params: dict[str, Any] = {"count": count}
            if at > 0:
                params["at"] = at
            return AttackClause(attack="failstop", params=params)

        options.append(failstop_clause)

        if base.protocol == "pbft":

            def equivocation_clause() -> AttackClause:
                return AttackClause(attack="pbft-equivocation", params={})

            options.append(equivocation_clause)

    return [rng.choice(options)()]


def _random_spec(
    rng: random.Random, base: SimulationConfig, f: int, name: str
) -> ScenarioSpec:
    """One random candidate: 1-2 clauses, budget- and rule-respecting."""
    spec = ScenarioSpec(name=name)
    remaining = f
    for _ in range(rng.choice((1, 1, 2))):
        for clause in _clause_templates(rng, base, f, remaining):
            demand = clause.attacker_class().corruption_demand(clause.params, f)
            if demand > remaining:
                continue
            remaining -= demand
            spec.attacks.append(clause)
    if rng.random() < 0.25:
        from ..core.config import FaultSpec

        spec.faults.append(
            FaultSpec(kind="loss", rate=rng.choice((0.02, 0.05, 0.1)))
        )
    if not spec.attacks and not spec.faults:
        spec.attacks.append(
            AttackClause(
                attack="targeted-delay", params={"factor": rng.choice(_FACTORS)}
            )
        )
    return spec


def _mutate_spec(
    rng: random.Random, parent: ScenarioSpec, base: SimulationConfig, f: int,
    name: str, perturb_only: bool = False,
) -> ScenarioSpec:
    """A mutated copy of ``parent`` (perturb, add, or drop one clause).

    ``perturb_only`` (refine mode) keeps the parent's clause structure and
    targeting intact and only perturbs numeric parameters — the search then
    optimizes the *parameters* of a hand-written scenario shape.
    """
    spec = ScenarioSpec.from_dict(parent.to_dict())
    spec.name = name
    if perturb_only:
        op = "perturb"
    else:
        ops = ["perturb", "add"]
        if len(spec.attacks) > 1:
            ops.append("drop")
        op = rng.choice(ops)
    if op == "drop" and spec.attacks:
        spec.attacks.pop(rng.randrange(len(spec.attacks)))
        return spec
    if op == "add":
        used = spec.corruption_demand(f)
        for clause in _clause_templates(rng, base, f, max(0, f - used)):
            demand = clause.attacker_class().corruption_demand(clause.params, f)
            if used + demand <= f:
                spec.attacks.append(clause)
        return spec
    if spec.attacks:
        clause = rng.choice(spec.attacks)
        params = clause.params
        numeric = [k for k, v in params.items()
                   if isinstance(v, (int, float)) and not isinstance(v, bool)]
        if numeric:
            key = rng.choice(numeric)
            value = params[key] * rng.choice((0.5, 1.5, 2.0))
            if key == "count":
                params[key] = max(1, min(f, int(value)))
            else:
                params[key] = type(params[key])(value)
        elif rng.random() < 0.5 and clause.end is None:
            clause.end = clause.start + rng.choice((10.0, 20.0)) * base.lam
    return spec


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _eval_base(base: SimulationConfig) -> SimulationConfig:
    """The hardened evaluation configuration: watchdog on, horizon soft."""
    stall = base.stall_timeout
    if stall is None:
        stall = DEFAULT_STALL_LAMBDAS * base.lam
    return base.replace(stall_timeout=stall, allow_horizon=True)


def _run_batch(
    configs: list[SimulationConfig],
    jobs: int | None,
    timeout: float | None,
    retries: int,
) -> list[SimulationResult | RunFailure]:
    """Run every config; failures are recorded, never raised."""
    if (jobs is None or jobs != 1) or timeout is not None:
        from ..parallel import ParallelRunner

        runner = ParallelRunner(jobs=jobs, timeout=timeout, retries=retries)
        return runner.map(configs)
    entries: list[SimulationResult | RunFailure] = []
    for index, config in enumerate(configs):
        try:
            entries.append(run_simulation(config))
        except Exception as exc:  # graceful degradation: record, continue
            entries.append(
                RunFailure(
                    config=config,
                    kind="error",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    run_index=index,
                )
            )
    return entries


def _first_decision_time(result: SimulationResult) -> float:
    if result.decisions:
        return min(decision.time for decision in result.decisions)
    return result.latency


def _score_entries(
    record: EvaluatedSpec,
    entries: list[SimulationResult | RunFailure],
    objective: str,
) -> None:
    """Fill ``record`` from the spec's repetition results (in place)."""
    failures = [e for e in entries if isinstance(e, RunFailure)]
    results = [e for e in entries if isinstance(e, SimulationResult)]
    record.failures = len(failures)
    record.stalled = sum(1 for r in results if r.stalled or not r.terminated)
    record.fingerprints = [
        None if isinstance(e, RunFailure) else result_fingerprint(e)
        for e in entries
    ]
    if failures:
        record.unfit_reason = f"{len(failures)} failed run(s): " + failures[0].summary()
        return
    latencies = [r.latency_per_decision for r in results]
    record.median_latency = statistics.median(latencies) if latencies else None
    record.first_decision = (
        statistics.median(_first_decision_time(r) for r in results)
        if results
        else None
    )
    if objective == "median-latency":
        if record.stalled:
            record.unfit_reason = (
                f"{record.stalled} stalled/unterminated run(s); not a "
                "latency worst case"
            )
            return
        record.score = record.median_latency
    elif objective == "stall":
        # Stalls ARE the objective; latency breaks ties among equal rates.
        rate = record.stalled / len(results) if results else 0.0
        tie = (record.median_latency or 0.0) / 1e9
        record.score = rate + min(tie, 0.999e-3)
    elif objective == "throughput":
        # The adversary MINIMIZES committed tx/s (worst case = slowest
        # drain), so the maximized score is its negation.  Requires a
        # workload on the base config; stalled runs are legitimate here —
        # an attack that stops batches from committing is the worst case.
        rates = [
            r.workload.committed_tx_s for r in results
            if r.workload is not None
        ]
        if not rates:
            record.unfit_reason = (
                "no workload metrics in any run; the throughput objective "
                "requires a base config with workload="
            )
            return
        record.score = -statistics.median(rates)
    else:  # first-decision (client starvation)
        record.score = record.first_decision


def mine(
    base: SimulationConfig,
    *,
    objective: str = "median-latency",
    generations: int = 3,
    population: int = 8,
    reps: int = 1,
    elites: int = 2,
    search_seed: int = 0,
    jobs: int | None = 1,
    timeout: float | None = None,
    retries: int = 1,
    seed_specs: list[ScenarioSpec] | None = None,
    refine: bool = False,
    log: Callable[[str], None] | None = None,
) -> MiningReport:
    """Search for the scenario that maximizes ``objective`` against ``base``.

    Args:
        base: the victim configuration (protocol, n, network, seed).  Must
            carry the null attack; candidates are applied on top.
        objective: one of :data:`OBJECTIVES`.
        generations: evolve iterations (>= 1).
        population: candidate specs per generation.
        reps: evaluation repetitions per spec (seeds ``base.seed + i``).
        elites: top specs carried over unchanged as parents.
        search_seed: RNG seed for candidate generation and mutation.
        jobs: worker processes per generation batch (``1`` = in-process,
            ``None``/``0`` = one per CPU).
        timeout: wall-clock seconds allowed per run (hostile specs can be
            slow hosts even when simulated time is bounded).
        retries: retries for crashed/hung workers.
        seed_specs: optional hand-written specs injected into generation 0.
        refine: parameter-refinement mode — every candidate is a numeric
            perturbation of a seed spec (or of an elite descended from one);
            clause structure and targeting never change and no fresh specs
            are drawn.  Requires ``seed_specs``.  Use it to optimize the
            parameters of a scenario shape you chose deliberately (e.g. a
            relay-only chokehold that unconstrained search would abandon
            for a blunter global attack).
        log: optional progress sink (one line per generation).

    Returns:
        A :class:`MiningReport`; ``report.winner`` is ``None`` only when
        every candidate was unfit.
    """
    if objective not in OBJECTIVES:
        raise ConfigurationError(
            f"unknown mining objective {objective!r}; available: {list(OBJECTIVES)}"
        )
    if generations < 1 or population < 1 or reps < 1:
        raise ConfigurationError(
            "mine() needs generations, population, and reps all >= 1"
        )
    if base.attack.name != "null":
        raise ConfigurationError(
            "mine() needs a null-attack base configuration; candidates "
            "supply the adversary"
        )
    if refine and not seed_specs:
        raise ConfigurationError(
            "refine mode perturbs seed specs; pass at least one via "
            "seed_specs (CLI: --scenario)"
        )
    rng = random.Random(search_seed)
    eval_base = _eval_base(base)
    dummy = ScenarioSpec()
    f = dummy.resolve_f(base)
    seeds = [base.seed + i for i in range(reps)]

    baseline_entries = _run_batch(
        [eval_base.replace(seed=s) for s in seeds], jobs, timeout, retries
    )
    baseline_results = [
        e for e in baseline_entries if isinstance(e, SimulationResult)
    ]
    if not baseline_results:
        raise ConfigurationError(
            "baseline runs all failed; cannot score candidates: "
            + baseline_entries[0].summary()
        )
    baseline_latency = statistics.median(
        r.latency_per_decision for r in baseline_results
    )
    baseline_fps = [result_fingerprint(r) for r in baseline_results]

    lineage: list[EvaluatedSpec] = []
    parents: list[EvaluatedSpec] = []
    counter = 0

    for generation in range(generations):
        # Elites persist as parents across generations without being
        # re-evaluated (scores are deterministic), so every population slot
        # goes to a new candidate: mutations of the elites, or fresh draws.
        candidates: list[tuple[ScenarioSpec, str | None]] = []
        if generation == 0:
            for spec in seed_specs or []:
                candidates.append((spec, None))
        while len(candidates) < population:
            counter += 1
            name = f"mined-{counter:03d}"
            if refine:
                if parents and rng.random() < 0.7:
                    source = rng.choice(parents[: max(elites, 1)])
                    parent_spec = ScenarioSpec.from_dict(source.spec)
                    parent_name: str | None = source.spec["name"]
                else:
                    seed_spec = rng.choice(seed_specs)
                    parent_spec = ScenarioSpec.from_dict(seed_spec.to_dict())
                    parent_name = seed_spec.name
                spec = _mutate_spec(
                    rng, parent_spec, base, f, name, perturb_only=True
                )
                candidates.append((spec, parent_name))
            elif generation > 0 and parents and rng.random() < 0.7:
                parent = rng.choice(parents[: max(elites, 1)])
                spec = _mutate_spec(
                    rng, ScenarioSpec.from_dict(parent.spec), base, f, name
                )
                candidates.append((spec, parent.spec["name"]))
            else:
                candidates.append((_random_spec(rng, base, f, name), None))

        records: list[EvaluatedSpec] = []
        batch: list[SimulationConfig] = []
        batch_owner: list[EvaluatedSpec] = []
        for spec, parent_name in candidates:
            record = EvaluatedSpec(
                spec=spec.to_dict(), generation=generation, parent=parent_name
            )
            records.append(record)
            try:
                applied = spec.apply(eval_base)
            except ConfigurationError as error:
                record.unfit_reason = f"invalid spec: {error}"
                continue
            for seed in seeds:
                batch.append(applied.replace(seed=seed))
                batch_owner.append(record)

        entries = _run_batch(batch, jobs, timeout, retries)
        by_record: dict[int, list[SimulationResult | RunFailure]] = {}
        for owner, entry in zip(batch_owner, entries):
            by_record.setdefault(id(owner), []).append(entry)
        for record in records:
            if record.unfit_reason is None:
                _score_entries(record, by_record.get(id(record), []), objective)
        lineage.extend(records)

        fit = [r for r in lineage if r.fit]
        fit.sort(key=lambda r: (-(r.score or 0.0), r.spec_json()))
        parents = fit
        if log is not None:
            best = fit[0] if fit else None
            best_s = (
                f"best score={best.score:.1f} ({best.spec['name']})"
                if best
                else "no fit spec yet"
            )
            unfit = sum(1 for r in records if not r.fit)
            log(
                f"generation {generation}: {len(records)} specs "
                f"({unfit} unfit), {best_s}"
            )

    winner = parents[0] if parents else None
    return MiningReport(
        objective=objective,
        base_config=eval_base,
        search_seed=search_seed,
        generations=generations,
        population=population,
        reps=reps,
        seeds=seeds,
        baseline_latency=baseline_latency,
        baseline_fingerprints=baseline_fps,
        lineage=lineage,
        winner=winner,
    )


# ---------------------------------------------------------------------------
# Artifact replay
# ---------------------------------------------------------------------------


def load_artifact(path: str) -> dict[str, Any]:
    """Read and schema-check a mining artifact written by ``repro mine``."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("kind") != ARTIFACT_KIND:
        raise ConfigurationError(
            f"{path!r} is not a mining artifact (kind={data.get('kind')!r})"
        )
    return data


def winner_config(artifact: dict[str, Any], seed_index: int = 0) -> SimulationConfig:
    """The full run configuration of the artifact's winner at one seed."""
    winner = artifact.get("winner")
    if not winner:
        raise ConfigurationError("artifact has no winner to replay")
    base = SimulationConfig.from_dict(artifact["base_config"])
    spec = ScenarioSpec.from_dict(winner["spec"])
    seeds = artifact["seeds"]
    return spec.apply(base).replace(seed=seeds[seed_index])


def replay_winner(
    artifact: dict[str, Any], seed_index: int = 0
) -> tuple[SimulationResult, str, str]:
    """Re-run the winner at one seed; returns (result, fingerprint, expected).

    The two fingerprints must match byte-for-byte on any machine — the
    replayability contract the tests and docs lean on.
    """
    config = winner_config(artifact, seed_index)
    result = run_simulation(config)
    expected = artifact["winner"]["fingerprints"][seed_index]
    return result, result_fingerprint(result), expected


# ---------------------------------------------------------------------------
# Artifact regression checking (``repro mine --check``)
# ---------------------------------------------------------------------------


@dataclass
class ArtifactCheck:
    """Outcome of re-scoring a committed mining artifact.

    A committed artifact is a worst-case *claim*: "this scenario costs the
    protocol ``stored_ratio``x its baseline latency".  The check re-runs the
    stored baseline and winner at the artifact's own seeds and compares —
    so a protocol or engine change that silently weakens (or strengthens)
    a mined attack shows up in CI instead of aging in the repo.

    Fingerprint mismatches and drift are reported separately: a fingerprint
    mismatch means the run itself changed (the determinism contract moved),
    while ratio drift with matching fingerprints is impossible — so
    ``drift`` only carries signal on an engine whose determinism changed
    deliberately, and the tolerance exists for exactly that migration case.
    """

    path: str
    objective: str
    tolerance: float
    stored_baseline: float
    fresh_baseline: float
    stored_winner: float | None
    fresh_winner: float | None
    stored_ratio: float | None
    fresh_ratio: float | None
    baseline_fingerprints_ok: bool
    winner_fingerprints_ok: bool
    failures: int = 0

    @property
    def drift(self) -> float | None:
        """Relative attack-ratio change, fresh vs stored (signed)."""
        if not self.stored_ratio or self.fresh_ratio is None:
            return None
        return self.fresh_ratio / self.stored_ratio - 1.0

    @property
    def ok(self) -> bool:
        """True when the artifact still reproduces within tolerance."""
        if self.failures or self.drift is None:
            return False
        return (
            self.baseline_fingerprints_ok
            and self.winner_fingerprints_ok
            and abs(self.drift) <= self.tolerance
        )

    def summary(self) -> str:
        if self.drift is None:
            return f"check[{self.path}]: FAILED ({self.failures} failed runs)"
        verdict = "OK" if self.ok else "DRIFT"
        fps = "match" if (
            self.baseline_fingerprints_ok and self.winner_fingerprints_ok
        ) else "MISMATCH"
        return (
            f"check[{self.path}]: {verdict} — stored "
            f"{self.stored_ratio:.2f}x, fresh {self.fresh_ratio:.2f}x "
            f"({self.drift:+.1%}, tolerance ±{self.tolerance:.0%}), "
            f"fingerprints {fps}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "objective": self.objective,
            "tolerance": self.tolerance,
            "stored_baseline": self.stored_baseline,
            "fresh_baseline": self.fresh_baseline,
            "stored_winner": self.stored_winner,
            "fresh_winner": self.fresh_winner,
            "stored_ratio": self.stored_ratio,
            "fresh_ratio": self.fresh_ratio,
            "drift": self.drift,
            "baseline_fingerprints_ok": self.baseline_fingerprints_ok,
            "winner_fingerprints_ok": self.winner_fingerprints_ok,
            "failures": self.failures,
            "ok": self.ok,
        }


def check_artifact(
    path: str,
    *,
    tolerance: float = 0.05,
    jobs: int | None = 1,
    timeout: float | None = None,
    retries: int = 1,
) -> ArtifactCheck:
    """Re-score ``path``'s winner against its stored baseline.

    Re-runs the baseline configuration and the winning scenario at every
    seed the artifact recorded, then compares the fresh attack ratio
    (winner median latency/decision over baseline median) against the
    stored one.  ``tolerance`` bounds the accepted relative drift.
    """
    artifact = load_artifact(path)
    winner = artifact.get("winner")
    if not winner:
        raise ConfigurationError(f"{path!r} has no winner to check")
    base = SimulationConfig.from_dict(artifact["base_config"])
    seeds = artifact["seeds"]

    baseline_entries = _run_batch(
        [base.replace(seed=s) for s in seeds], jobs, timeout, retries
    )
    winner_entries = _run_batch(
        [winner_config(artifact, i) for i in range(len(seeds))],
        jobs, timeout, retries,
    )
    failures = sum(
        1 for e in baseline_entries + winner_entries if isinstance(e, RunFailure)
    )
    baseline_results = [
        e for e in baseline_entries if isinstance(e, SimulationResult)
    ]
    winner_results = [
        e for e in winner_entries if isinstance(e, SimulationResult)
    ]

    fresh_baseline = (
        statistics.median(r.latency_per_decision for r in baseline_results)
        if baseline_results else float("nan")
    )
    fresh_winner = (
        statistics.median(r.latency_per_decision for r in winner_results)
        if winner_results else None
    )
    stored_baseline = float(artifact["baseline"]["median_latency"])
    stored_winner = winner.get("median_latency")
    stored_ratio = winner.get("ratio_vs_baseline")
    if stored_ratio is None and stored_winner and stored_baseline > 0:
        stored_ratio = stored_winner / stored_baseline
    fresh_ratio = (
        fresh_winner / fresh_baseline
        if fresh_winner is not None and fresh_baseline > 0
        else None
    )

    stored_base_fps = artifact["baseline"]["fingerprints"]
    stored_winner_fps = winner.get("fingerprints", [])
    fresh_base_fps = [
        result_fingerprint(e) if isinstance(e, SimulationResult) else None
        for e in baseline_entries
    ]
    fresh_winner_fps = [
        result_fingerprint(e) if isinstance(e, SimulationResult) else None
        for e in winner_entries
    ]

    return ArtifactCheck(
        path=path,
        objective=str(artifact.get("objective", "?")),
        tolerance=tolerance,
        stored_baseline=stored_baseline,
        fresh_baseline=fresh_baseline,
        stored_winner=stored_winner,
        fresh_winner=fresh_winner,
        stored_ratio=stored_ratio,
        fresh_ratio=fresh_ratio,
        baseline_fingerprints_ok=fresh_base_fps == stored_base_fps,
        winner_fingerprints_ok=fresh_winner_fps == stored_winner_fps,
        failures=failures,
    )
