"""The ``"scenario"`` composite attacker.

Executes a :class:`~repro.scenarios.spec.ScenarioSpec`'s attack clauses as
one attacker: children run in clause order per message, each only inside
its activation window, all sharing a single corruption budget (``f`` total,
not ``f`` each).

The composite declares the **union** of its children's capabilities (the
network module enforces that outer bound), but additionally holds every
child to its **own** declared capabilities:

* each child acts through a :class:`_ChildContext` whose ``capabilities``
  are the child's — so ``corrupt``/``forge``/``signals``/``overlay_relays``
  raise unless *that child* declared the right;
* a child without ``OBSERVE`` sees redacted payloads even when a sibling
  is observing;
* payload edits, re-timing, and drops by a child are diffed against that
  child's rights, mirroring :meth:`NetworkModule._run_attacker`.

Child timers are namespaced (``sc<i>:<name>``) so the composite can route
each firing back to the owning clause; the original name is restored on a
reconstructed event, so children are written exactly as they would be
standalone.  Child RNG streams are namespaced the same way
(``attack.sc<i>.<name>``), keeping every clause's draws independent of its
siblings and of clause order-preserving edits elsewhere in the spec.

A clause with ``start > 0`` is *dormant* until its window opens: its
``setup`` runs when the activation timer fires (which is why the validator
demands ``ADAPTIVE`` for windowed corrupting clauses), and its ``attack``
is only consulted for messages sent inside the window.
"""

from __future__ import annotations

import random
from typing import Any

from ..attacks.base import (
    Attacker,
    AttackerContext,
    Capability,
    REDACTED_PAYLOAD,
)
from ..attacks.registry import register_attack
from ..core.errors import CapabilityError
from ..core.events import TimeEvent
from ..core.message import Message, deep_copy_payload
from ..core.node import TimerHandle
from .spec import ScenarioSpec

#: Timer-name prefix separating clause index from the child's own name.
_PREFIX = "sc"
#: Reserved child timer fired when a windowed clause activates.
_ACTIVATE = "__activate__"


class _ChildContext(AttackerContext):
    """A clause-scoped view of the shared attacker context.

    Shares the parent's corruption ledger (one budget for the whole
    scenario) but presents the *child's* declared capabilities, so the
    capability checks inherited from :class:`AttackerContext` enforce the
    clause's own threat model.  Timer and RNG names are prefixed with the
    clause index.
    """

    def __init__(self, parent: AttackerContext, capabilities: Capability,
                 index: int) -> None:
        self._controller = parent._controller
        self.capabilities = capabilities
        # Shared object, not a copy: every clause draws from one budget.
        self._corrupted_since = parent._corrupted_since
        self._index = index
        #: True once the clause's ``setup`` has run.
        self.ready = False

    def rng(self, name: str = "attacker") -> random.Random:
        return self._controller.shared_rng(
            f"attack.{_PREFIX}{self._index}.{name}"
        )

    def set_timer(self, delay: float, name: str, **data: Any) -> TimerHandle:
        return super().set_timer(
            delay, f"{_PREFIX}{self._index}:{name}", **data
        )


@register_attack("scenario")
class CompositeAttacker(Attacker):
    """Runs a scenario's attack clauses as one budget-sharing adversary."""

    def __init__(self, params: dict[str, Any] | None = None) -> None:
        super().__init__(params)
        self.spec = ScenarioSpec.from_dict(self.params)
        self._clauses = self.spec.attacks
        self._children = [
            clause.attacker_class()(clause.params) for clause in self._clauses
        ]
        caps = Capability.NONE
        for child in self._children:
            caps |= child.capabilities
        self.capabilities = caps
        self.wants_signals = any(child.wants_signals for child in self._children)
        self._child_ctxs: list[_ChildContext] = []

    def bind(self, ctx: AttackerContext) -> None:
        super().bind(ctx)
        self._child_ctxs = [
            _ChildContext(ctx, child.capabilities, index)
            for index, child in enumerate(self._children)
        ]
        for child, child_ctx in zip(self._children, self._child_ctxs):
            child.bind(child_ctx)

    def setup(self) -> None:
        for index, clause in enumerate(self._clauses):
            if clause.start <= 0:
                self._activate(index)
            else:
                self.ctx.set_timer(
                    clause.start, f"{_PREFIX}{index}:{_ACTIVATE}"
                )

    def _activate(self, index: int) -> None:
        child_ctx = self._child_ctxs[index]
        if not child_ctx.ready:
            self._children[index].setup()
            child_ctx.ready = True

    # -- per-message chain ---------------------------------------------------

    def attack(self, message: Message):
        now = message.sent_at
        forged: list[Message] = []
        dropped = False
        for index, clause in enumerate(self._clauses):
            if not clause.active_at(now) or not self._child_ctxs[index].ready:
                continue
            keep, extra = self._child_attack(index, message)
            forged.extend(extra)
            if not keep:
                dropped = True
                break
        if dropped:
            return forged
        if forged:
            return [message, *forged]
        return None

    def _child_attack(self, index: int, message: Message) -> tuple[bool, list[Message]]:
        """Run one clause on ``message``; returns (keep, forged messages).

        Enforces the clause's own capability rules by diffing the child's
        output against a snapshot, exactly as the network module does for
        the composite as a whole.
        """
        child = self._children[index]
        controls = self.ctx.controls_message(message)
        observable = Capability.OBSERVE in child.capabilities or controls
        if observable:
            proxy = message
            snapshot_payload = deep_copy_payload(message.payload)
        else:
            proxy = Message(
                source=message.source,
                dest=message.dest,
                payload=dict(REDACTED_PAYLOAD),
                sent_at=message.sent_at,
                delay=message.delay,
                msg_id=message.msg_id,
            )
            snapshot_payload = None
        snapshot_delay = message.delay

        returned = child.attack(proxy)
        if returned is None:
            if proxy is not message:
                return True, []
            returned = [proxy]
        returned = list(returned)

        kept_item: Message | None = None
        forged: list[Message] = []
        for item in returned:
            if item.msg_id == message.msg_id:
                kept_item = item
            elif item.forged:
                forged.append(item)
            else:
                raise CapabilityError(
                    f"scenario clause #{index} ({self._clauses[index].attack}) "
                    "returned a message it neither received nor forged: "
                    f"{item.describe()}"
                )

        if kept_item is None:
            if Capability.NETWORK not in child.capabilities and not controls:
                raise CapabilityError(
                    f"scenario clause #{index} ({self._clauses[index].attack}) "
                    f"dropped honest message {message.describe()} without the "
                    "NETWORK capability"
                )
            return False, forged

        if proxy is not message:
            if kept_item.payload != REDACTED_PAYLOAD:
                raise CapabilityError(
                    f"scenario clause #{index} ({self._clauses[index].attack}) "
                    "modified a redacted payload without OBSERVE"
                )
            message.delay = kept_item.delay
        elif kept_item.payload != snapshot_payload and not controls:
            raise CapabilityError(
                f"scenario clause #{index} ({self._clauses[index].attack}) "
                f"modified the payload of honest message {message.describe()} "
                "without controlling its source"
            )
        if message.delay != snapshot_delay:
            if Capability.NETWORK not in child.capabilities and not controls:
                raise CapabilityError(
                    f"scenario clause #{index} ({self._clauses[index].attack}) "
                    f"re-timed message {message.describe()} without the "
                    "NETWORK capability"
                )
            if message.delay is None or message.delay < 0:
                raise CapabilityError(
                    f"scenario clause #{index} ({self._clauses[index].attack}) "
                    "assigned an invalid delay"
                )
        return True, forged

    # -- timer routing -------------------------------------------------------

    def on_timer(self, timer: TimeEvent) -> None:
        name = timer.name
        if not name.startswith(_PREFIX):
            return
        index_s, sep, child_name = name[len(_PREFIX):].partition(":")
        if not sep:
            return
        try:
            index = int(index_s)
        except ValueError:
            return
        if not 0 <= index < len(self._children):
            return
        if child_name == _ACTIVATE:
            self._activate(index)
            return
        if not self._child_ctxs[index].ready:
            return
        # TimeEvent is frozen; rebuild it with the child's original name so
        # the clause's own ``on_timer`` dispatch works unmodified.
        self._children[index].on_timer(
            TimeEvent(
                time=timer.time,
                owner=timer.owner,
                name=child_name,
                data=timer.data,
                timer_id=timer.timer_id,
                cause=timer.cause,
            )
        )

    def describe(self) -> str:
        return f"CompositeAttacker({self.spec.describe()})"
