"""repro — an efficient and flexible simulator for BFT protocols.

A Python reproduction of the DSN 2022 tool paper "An Efficient and Flexible
Simulator for Byzantine Fault-Tolerant Protocols" (Wang, Chao, Wu, Hsiao).

The package provides:

* a deterministic discrete-event simulator (controller, event queue,
  simulated clock) — :mod:`repro.core`;
* a configurable peer-to-peer network model with pluggable delay
  distributions and partition support — :mod:`repro.network`;
* an abstracted *global attacker* with capability-enforced threat models —
  :mod:`repro.attacks`;
* a declarative environmental fault layer (message loss, duplication,
  corruption, link churn, node crash/recovery) plus a liveness watchdog —
  :mod:`repro.faults`;
* eight reference BFT protocols (ADD+ v1/v2/v3, Algorand Agreement,
  Bracha's async BA, PBFT, HotStuff+NS, LibraBFT) — :mod:`repro.protocols`;
* a validator module for trace cross-checking — :mod:`repro.validator`;
* a BFTSim-style packet-level baseline simulator — :mod:`repro.baseline`;
* the experiment harness regenerating the paper's tables and figures —
  :mod:`repro.analysis`;
* a run telemetry layer (streaming trace sinks, hot-path profiler,
  structured simulated-time logging, trace forensics behind the
  ``repro inspect`` CLI) — :mod:`repro.observability`;
* an open-loop client workload layer (Poisson/trace arrivals, leader
  mempool with batch cut, throughput–latency saturation curves) —
  :mod:`repro.workload`.

Quickstart::

    from repro import SimulationConfig, run_simulation

    config = SimulationConfig(protocol="pbft", n=16, lam=1000.0)
    result = run_simulation(config)
    print(result.summary())
"""

from .core.config import (
    AttackConfig,
    FaultScheduleConfig,
    FaultSpec,
    NetworkConfig,
    SimulationConfig,
    WorkloadConfig,
)
from .core.controller import Controller
from .core.message import Message
from .core.node import Node
from .core.results import (
    RequestRecord,
    RunFailure,
    SimulationResult,
    StallReport,
    ThroughputMetrics,
    result_fingerprint,
)
from .core.runner import repeat_simulation, run_simulation, sweep
from .faults import parse_faults_spec
from .observability import (
    EventFilter,
    JsonlSink,
    MemorySink,
    NullSink,
    Profiler,
    RunProfile,
    TraceSink,
    analyze_trace,
    configure_logging,
    render_report,
)
from .parallel import ParallelRunner, ProgressUpdate
from .protocols.registry import available_protocols, get_protocol, register_protocol
from .attacks.registry import available_attacks, get_attack, register_attack
from .workload import parse_workload_spec

__version__ = "1.2.0"

__all__ = [
    "AttackConfig",
    "Controller",
    "EventFilter",
    "FaultScheduleConfig",
    "FaultSpec",
    "JsonlSink",
    "MemorySink",
    "Message",
    "NetworkConfig",
    "Node",
    "NullSink",
    "ParallelRunner",
    "Profiler",
    "ProgressUpdate",
    "RequestRecord",
    "RunFailure",
    "RunProfile",
    "SimulationConfig",
    "SimulationResult",
    "StallReport",
    "ThroughputMetrics",
    "TraceSink",
    "WorkloadConfig",
    "analyze_trace",
    "available_attacks",
    "available_protocols",
    "configure_logging",
    "get_attack",
    "get_protocol",
    "parse_faults_spec",
    "parse_workload_spec",
    "render_report",
    "register_attack",
    "register_protocol",
    "repeat_simulation",
    "result_fingerprint",
    "run_simulation",
    "sweep",
    "__version__",
]
