"""Cross-validation of simulation outputs against ground truth.

Implements the checking half of the paper's validator module: given two
traces (or results), verify that the consensus modules produced the same
outcome — "which node agrees on what value" (§III-A6) — and optionally that
protocol-level event sequences match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..core.tracing import Trace


@dataclass
class ValidationReport:
    """Outcome of a cross-validation.

    Attributes:
        matches: True when no mismatch was found.
        mismatches: human-readable descriptions of every disagreement.
        checked_decisions: number of (node, slot) decision pairs compared.
        checked_events: number of sequence positions compared.
    """

    mismatches: list[str] = field(default_factory=list)
    checked_decisions: int = 0
    checked_events: int = 0

    @property
    def matches(self) -> bool:
        return not self.mismatches

    def add(self, description: str) -> None:
        self.mismatches.append(description)

    def summary(self) -> str:
        status = "MATCH" if self.matches else f"{len(self.mismatches)} MISMATCHES"
        return (
            f"validation: {status} "
            f"({self.checked_decisions} decisions, {self.checked_events} events compared)"
        )


def decisions_of(trace: Trace) -> dict[tuple[int, int], Any]:
    """``(node, slot) -> value`` from a trace's decide events."""
    return {
        (event.node, int(event.fields["slot"])): event.fields["value"]
        for event in trace.events(kind="decide")
    }


def compare_decisions(ground_truth: Trace, candidate: Trace) -> ValidationReport:
    """Check that every ground-truth decision is reproduced.

    The candidate may contain *extra* decisions (it may have been run
    longer); missing or conflicting decisions are mismatches.
    """
    report = ValidationReport()
    truth = decisions_of(ground_truth)
    seen = decisions_of(candidate)
    for (node, slot), value in sorted(truth.items()):
        report.checked_decisions += 1
        if (node, slot) not in seen:
            report.add(f"node {node} never decided slot {slot} (expected {value!r})")
        elif seen[(node, slot)] != value:
            report.add(
                f"node {node} slot {slot}: decided {seen[(node, slot)]!r}, "
                f"ground truth says {value!r}"
            )
    return report


#: Trace fields that identify *engine bookkeeping*, not protocol behaviour:
#: causal-lineage ids and timer ids are assigned per engine run, so two
#: engines (or a run and its replay) legitimately disagree on them while
#: agreeing on every protocol-visible fact.
_ENGINE_METADATA_KEYS = frozenset({"cause", "timer_id"})


def event_signature(trace: Trace, kinds: Iterable[str], node: int | None = None) -> list[tuple]:
    """The ordered subsequence of ``kinds`` events as comparable tuples.

    Timestamps are deliberately excluded: two engines agree when they
    produce the same *sequence* of protocol events, not the same absolute
    times (the paper validates PBFT against BFTSim the same way —
    "identical event sequences").  Engine-internal observability metadata
    (:data:`_ENGINE_METADATA_KEYS`) is excluded for the same reason."""
    wanted = set(kinds)
    return [
        (
            event.kind,
            event.node,
            tuple(
                sorted(
                    (key, value)
                    for key, value in event.fields.items()
                    if key not in _ENGINE_METADATA_KEYS
                )
            ),
        )
        for event in trace
        if event.kind in wanted and (node is None or event.node == node)
    ]


def compare_event_sequences(
    ground_truth: Trace,
    candidate: Trace,
    kinds: Iterable[str] = ("decide",),
    node: int | None = None,
) -> ValidationReport:
    """Position-by-position comparison of the selected event subsequences."""
    report = ValidationReport()
    expected = event_signature(ground_truth, kinds, node)
    actual = event_signature(candidate, kinds, node)
    for index, (want, got) in enumerate(zip(expected, actual)):
        report.checked_events += 1
        if want != got:
            report.add(f"event {index}: expected {want}, got {got}")
    if len(expected) != len(actual):
        report.add(
            f"sequence length differs: ground truth has {len(expected)} events, "
            f"candidate has {len(actual)}"
        )
    return report
