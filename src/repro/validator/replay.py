"""Replay network: re-run a simulation under a ground-truth delivery schedule.

The paper's validator module (§III-A6) is "a special mode of the network
module" that replays message events according to a ground-truth event
sequence produced by another simulator (BFTSim there; our packet-level
baseline or a golden trace here), then checks that the consensus module
produces the same result.

Mechanics: the ground-truth trace pairs each ``send`` with its ``deliver``,
giving every transmitted message an observed transit delay.  The replay
network assigns those recorded delays — matched by
``(source, dest, message type, occurrence index)``, which is stable across
engines because protocol logic is deterministic — instead of sampling new
ones.  Messages without a ground-truth counterpart (the replayed run drifted)
fall back to the median recorded delay and are counted as mismatches.
"""

from __future__ import annotations

import statistics
from collections import defaultdict, deque

from ..core.config import SimulationConfig
from ..core.controller import Controller
from ..core.errors import ValidationError
from ..core.message import Message
from ..core.results import SimulationResult
from ..core.tracing import Trace


def extract_delivery_schedule(trace: Trace) -> dict[tuple[int, int, str], list[float]]:
    """Per ``(source, dest, msg_type)`` stream, the observed transit delays
    in send order."""
    send_times: dict[int, tuple[float, tuple[int, int, str]]] = {}
    for event in trace.events(kind="send"):
        key = (event.node, int(event.fields["dest"]), str(event.fields["msg_type"]))
        send_times[int(event.fields["msg_id"])] = (event.time, key)
    schedule: dict[tuple[int, int, str], list[float]] = defaultdict(list)
    order: dict[tuple[int, int, str], list[tuple[float, float]]] = defaultdict(list)
    for event in trace.events(kind="deliver"):
        msg_id = int(event.fields["msg_id"])
        if msg_id not in send_times:
            continue
        sent_at, key = send_times[msg_id]
        order[key].append((sent_at, event.time - sent_at))
    for key, entries in order.items():
        entries.sort()
        schedule[key] = [delay for _sent, delay in entries]
    return schedule


class ReplayController(Controller):
    """A controller whose network assigns ground-truth delays."""

    def __init__(self, config: SimulationConfig, ground_truth: Trace) -> None:
        replay_config = config.replace(record_trace=True)
        super().__init__(replay_config)
        schedule = extract_delivery_schedule(ground_truth)
        self._schedule = {key: deque(delays) for key, delays in schedule.items()}
        all_delays = [d for delays in schedule.values() for d in delays]
        if not all_delays:
            raise ValidationError("ground-truth trace contains no deliveries to replay")
        self._fallback_delay = statistics.median(all_delays)
        self.unmatched_messages = 0
        # First-class extension point: the network consults the override for
        # every message that still needs a delay (loopback self-deliveries
        # are pinned to zero before the hook and never reach it).
        self.network.set_delay_override(self._replay_delay)

    def _replay_delay(self, message: Message) -> float:
        """The ground-truth transit delay for ``message``.

        Delays are matched by ``(source, dest, message type)`` stream in
        send order; a message the ground truth never sent (the replayed run
        drifted) gets the median recorded delay and is counted in
        :attr:`unmatched_messages`.
        """
        key = (message.source, message.dest, message.type)
        pending = self._schedule.get(key)
        if pending:
            return pending.popleft()
        self.unmatched_messages += 1
        return self._fallback_delay


def replay_simulation(config: SimulationConfig, ground_truth: Trace) -> SimulationResult:
    """Run ``config`` under the delivery schedule recorded in ``ground_truth``."""
    return ReplayController(config, ground_truth).run()
