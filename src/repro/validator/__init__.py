"""The validator module: trace replay and cross-checking (paper §III-A6)."""

from .compare import (
    ValidationReport,
    compare_decisions,
    compare_event_sequences,
    decisions_of,
    event_signature,
)
from .replay import ReplayController, extract_delivery_schedule, replay_simulation

__all__ = [
    "ReplayController", "ValidationReport", "compare_decisions",
    "compare_event_sequences", "decisions_of", "event_signature",
    "extract_delivery_schedule", "replay_simulation",
]
